"""Paged KV-cache management: block tables over a fixed page pool.

The KV cache is the one tensor in a decode loop that *grows* — every
generated token appends one key row and one value row per layer.  Naive
management reallocates (and re-transfers, and worst of all *replans*)
a contiguous cache every step.  This module manages cache memory the
way vLLM manages GPU KV blocks: a fixed pool of fixed-size pages, a
block table per (sequence, layer) mapping logical token positions to
physical pages, and growth by appending pages — so a decode step's
graph is sized to the *allocated capacity* (whole pages), not the token
count, and only a page-boundary crossing changes any graph shape.

Cost accounting is explicit: appending one token moves exactly the new
K and V rows over the host→device bus, charged at the simulated
machine's rank-level transfer rate (`h2d_seconds`).  The utilization /
fragmentation vocabulary is shared with the intermediate-buffer planner
via :func:`repro.graph.memory.arena_stats` — here capacity is allocated
page-tokens and "used" is cached tokens, so the tail of the last page
shows up as fragmentation exactly like best-fit slack does in the
arena plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.memory import arena_stats
from ..upmem.config import UpmemConfig

__all__ = [
    "CacheError",
    "CacheExtension",
    "PagedKVCache",
    "h2d_seconds",
]


class CacheError(RuntimeError):
    """Page pool exhausted or a sequence/layer reference is invalid."""


def h2d_seconds(nbytes: int, config: Optional[UpmemConfig] = None) -> float:
    """Host→device seconds for one explicit transfer of ``nbytes``.

    One rank-level push (`xfer_call_overhead_s`) plus the bytes at the
    aggregate H2D bandwidth — the same constants the lowered-module
    timing model charges for parallel transfers, so cache-extension and
    weight-staging traffic is denominated in the machine's own units.
    """
    cfg = config or UpmemConfig()
    return cfg.xfer_call_overhead_s + nbytes / (cfg.h2d_bandwidth_gbps * 1e9)


@dataclass(frozen=True)
class CacheExtension:
    """One sequence/layer cache-growth event: the explicit transfers.

    ``pages_allocated`` lists physical pages newly taken from the pool
    (empty for an append landing inside the current tail page);
    ``nbytes``/``seconds`` charge the K row + V row actually moved.
    """

    sequence: str
    layer: int
    position: int
    pages_allocated: Tuple[int, ...]
    nbytes: int
    seconds: float

    def to_dict(self) -> Dict:
        return {
            "sequence": self.sequence,
            "layer": self.layer,
            "position": self.position,
            "pages_allocated": list(self.pages_allocated),
            "nbytes": self.nbytes,
            "seconds": self.seconds,
        }


@dataclass
class _Page:
    """One physical page: ``page_tokens`` K rows and V rows of one
    layer.  Zero-initialized — unwritten tail positions are masked out
    of attention, and zeros keep the padded reads deterministic."""

    k: np.ndarray
    v: np.ndarray


class PagedKVCache:
    """Block-table cache for N layers of per-token K/V rows.

    Pages are allocated from a fixed pool (lowest free id first, so
    allocation order is deterministic); each (sequence, layer) holds a
    block table — the ordered list of its physical page ids.  All
    layers of a sequence grow in lockstep, so one capacity number (in
    tokens, always a whole number of pages) sizes every attention
    operator of a decode-step graph.
    """

    def __init__(
        self,
        d_model: int,
        layers: int,
        page_tokens: int = 16,
        max_pages: int = 1024,
        config: Optional[UpmemConfig] = None,
    ) -> None:
        if d_model < 1 or layers < 1:
            raise ValueError(
                f"d_model/layers must be >= 1, got {d_model}/{layers}"
            )
        if page_tokens < 1:
            raise ValueError(f"page_tokens must be >= 1, got {page_tokens}")
        if max_pages < layers:
            raise ValueError(
                f"max_pages ({max_pages}) cannot hold even one page per"
                f" layer ({layers})"
            )
        self.d_model = d_model
        self.layers = layers
        self.page_tokens = page_tokens
        self.max_pages = max_pages
        self.config = config or UpmemConfig()
        self._pages: Dict[int, _Page] = {}
        self._free: List[int] = list(range(max_pages))
        #: sequence -> per-layer block tables (list of page ids).
        self._tables: Dict[str, List[List[int]]] = {}
        self._lengths: Dict[str, int] = {}
        self.events: List[CacheExtension] = []

    # -- page-size accounting ------------------------------------------------
    @property
    def row_nbytes(self) -> int:
        """Bytes of one K (or V) row: ``d_model`` float32 values."""
        return self.d_model * 4

    @property
    def page_nbytes(self) -> int:
        """Bytes of one physical page (K plane + V plane)."""
        return 2 * self.page_tokens * self.row_nbytes

    @property
    def free_pages(self) -> int:
        """Unallocated pages in the pool — the number a scheduler
        preflights against before admitting or stepping a sequence."""
        return len(self._free)

    # -- sequence lifecycle --------------------------------------------------
    def add_sequence(self, sequence: str) -> None:
        if sequence in self._tables:
            raise CacheError(f"sequence {sequence!r} already cached")
        self._tables[sequence] = [[] for _ in range(self.layers)]
        self._lengths[sequence] = 0

    def free_sequence(self, sequence: str) -> int:
        """Release every page of ``sequence`` back to the pool; returns
        the page count freed.  Freed ids re-enter the allocator sorted,
        keeping future allocation order independent of free order."""
        tables = self._tables.pop(sequence, None)
        if tables is None:
            raise CacheError(f"unknown sequence {sequence!r}")
        del self._lengths[sequence]
        freed = 0
        for table in tables:
            for pid in table:
                del self._pages[pid]
                self._free.append(pid)
                freed += 1
        self._free.sort()
        return freed

    def _table(self, sequence: str, layer: int) -> List[int]:
        try:
            tables = self._tables[sequence]
        except KeyError:
            raise CacheError(f"unknown sequence {sequence!r}") from None
        if not 0 <= layer < self.layers:
            raise CacheError(
                f"layer {layer} out of range for {self.layers}-layer cache"
            )
        return tables[layer]

    # -- growth --------------------------------------------------------------
    def _allocate_page(self) -> int:
        if not self._free:
            raise CacheError(
                f"page pool exhausted ({self.max_pages} pages of"
                f" {self.page_tokens} tokens)"
            )
        pid = self._free.pop(0)
        self._pages[pid] = _Page(
            k=np.zeros((self.page_tokens, self.d_model), dtype=np.float32),
            v=np.zeros((self.page_tokens, self.d_model), dtype=np.float32),
        )
        return pid

    def append(
        self,
        sequence: str,
        layer_rows: List[Tuple[np.ndarray, np.ndarray]],
    ) -> List[CacheExtension]:
        """Append one token's (k_row, v_row) per layer; returns the
        per-layer extension events (also accumulated on ``events``).

        Every append is an explicit host→device transfer of the two new
        rows; an append crossing a page boundary additionally allocates
        one page per layer (allocation itself moves no bytes — pages
        are carved out of device memory, not shipped from the host).
        """
        if len(layer_rows) != self.layers:
            raise CacheError(
                f"append expects {self.layers} (k, v) row pairs,"
                f" got {len(layer_rows)}"
            )
        position = self._lengths[sequence] if sequence in self._lengths else (
            self._raise_unknown(sequence)
        )
        slot = position % self.page_tokens
        new_events: List[CacheExtension] = []
        for layer, (k_row, v_row) in enumerate(layer_rows):
            k_row = np.asarray(k_row, dtype=np.float32).reshape(self.d_model)
            v_row = np.asarray(v_row, dtype=np.float32).reshape(self.d_model)
            table = self._table(sequence, layer)
            allocated: Tuple[int, ...] = ()
            if slot == 0:
                allocated = (self._allocate_page(),)
                table.append(allocated[0])
            page = self._pages[table[-1]]
            page.k[slot] = k_row
            page.v[slot] = v_row
            nbytes = 2 * self.row_nbytes
            event = CacheExtension(
                sequence=sequence,
                layer=layer,
                position=position,
                pages_allocated=allocated,
                nbytes=nbytes,
                seconds=h2d_seconds(nbytes, self.config),
            )
            new_events.append(event)
        self._lengths[sequence] = position + 1
        self.events.extend(new_events)
        from ..obs import current_tracer

        tracer = current_tracer()
        if tracer.enabled:
            for event in new_events:
                tracer.timed_span(
                    f"kv.append L{event.layer}",
                    track="kv-cache",
                    cat="kv",
                    dur_s=event.seconds,
                    args={
                        "sequence": event.sequence,
                        "position": event.position,
                        "nbytes": event.nbytes,
                        "pages": list(event.pages_allocated),
                    },
                )
        return new_events

    @staticmethod
    def _raise_unknown(sequence: str) -> int:
        raise CacheError(f"unknown sequence {sequence!r}")

    # -- reads ---------------------------------------------------------------
    def length(self, sequence: str) -> int:
        if sequence not in self._lengths:
            self._raise_unknown(sequence)
        return self._lengths[sequence]

    def capacity(self, sequence: str) -> int:
        """Allocated tokens (pages × page size) — what a decode-step
        graph must size its attention operators to.  Zero for a fresh
        sequence."""
        return len(self._table(sequence, 0)) * self.page_tokens

    def block_table(self, sequence: str, layer: int) -> Tuple[int, ...]:
        return tuple(self._table(sequence, layer))

    def dense_kv(
        self, sequence: str, layer: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize the layer's cache as dense (capacity, d_model)
        K and V planes in block-table order (what the attention
        operators bind as const inputs).  The concatenation copies, so
        subsequent in-place page writes never alias a running step."""
        table = self._table(sequence, layer)
        if not table:
            z = np.zeros((0, self.d_model), dtype=np.float32)
            return z, z.copy()
        k = np.concatenate([self._pages[p].k for p in table], axis=0)
        v = np.concatenate([self._pages[p].v for p in table], axis=0)
        return k, v

    def attention_mask(self, sequence: str) -> np.ndarray:
        """(capacity,) additive mask: 0 over cached positions, ``-inf``
        over the allocated-but-unwritten tail of the last page."""
        capacity = self.capacity(sequence)
        mask = np.full((capacity,), -np.inf, dtype=np.float32)
        mask[: self.length(sequence)] = 0.0
        return mask

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Pool occupancy plus the shared utilization/fragmentation
        summary (used = cached tokens, capacity = allocated
        page-tokens, summed over sequences and layers)."""
        allocated_pages = len(self._pages)
        cached_tokens = sum(self._lengths.values())
        token_capacity = sum(
            self.capacity(seq) for seq in self._tables
        )
        growth_s = sum(e.seconds for e in self.events)
        growth_bytes = sum(e.nbytes for e in self.events)
        return {
            "sequences": len(self._tables),
            "page_tokens": self.page_tokens,
            "pages_allocated": allocated_pages,
            "pages_free": len(self._free),
            "allocated_bytes": allocated_pages * self.page_nbytes,
            "cached_tokens": cached_tokens,
            "token_capacity": token_capacity,
            "extension_events": len(self.events),
            "extension_bytes": growth_bytes,
            "extension_seconds": growth_s,
            **arena_stats(token_capacity * self.layers, cached_tokens * self.layers),
        }
