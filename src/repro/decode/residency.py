"""Weight-residency planning: stage/evict layers under an MRAM budget.

GPT-J 6B's per-layer weights (~192 MB as float32) dwarf one DPU's
64 KB… the point is general: once a model's weights exceed the PIM
side's staging budget, "transfer constants once before kernel launches"
(§5.4) stops being a one-time cost and becomes a *schedule* — which
layers sit resident, which get evicted, and when each re-stages.  The
planner tracks that state across decode steps and charges every stage
through the same explicit-transfer model as cache growth
(:func:`repro.decode.kv_cache.h2d_seconds`); evictions are free (the
weights are read-only — dropping them writes nothing back).

Decode accesses layers cyclically (0, 1, …, L-1, step after step),
which makes the offline-optimal ("belady") policy computable exactly:
the resident layer reused furthest in the future is always the one just
*behind* the cursor.  LRU — the natural online policy — is provided for
contrast; under a cyclic scan shorter than the working set LRU famously
thrashes on every access, and the per-layer breakdown makes that
visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..upmem.config import UpmemConfig
from .kv_cache import h2d_seconds

__all__ = ["ResidencyError", "StageEvent", "WeightResidencyPlanner"]

POLICIES = ("belady", "lru")


class ResidencyError(RuntimeError):
    """Budget cannot hold a single layer, or the policy is unknown."""


@dataclass(frozen=True)
class StageEvent:
    """One residency transition while serving an access."""

    step: int
    layer: int
    #: ``"stage"`` (host→device transfer, charged) or ``"evict"``
    #: (read-only drop, free).
    action: str
    nbytes: int
    seconds: float

    def to_dict(self) -> Dict:
        return {
            "step": self.step,
            "layer": self.layer,
            "action": self.action,
            "nbytes": self.nbytes,
            "seconds": self.seconds,
        }


class WeightResidencyPlanner:
    """Stateful stage/evict scheduler over one model's layer weights."""

    def __init__(
        self,
        layer_nbytes: Sequence[int],
        budget_nbytes: int,
        policy: str = "belady",
        config: Optional[UpmemConfig] = None,
    ) -> None:
        if not layer_nbytes:
            raise ResidencyError("layer_nbytes must name at least one layer")
        if policy not in POLICIES:
            raise ResidencyError(
                f"unknown residency policy {policy!r}; choose from {POLICIES}"
            )
        biggest = max(layer_nbytes)
        if budget_nbytes < biggest:
            raise ResidencyError(
                f"budget {budget_nbytes} B cannot stage the largest layer"
                f" ({biggest} B) — no schedule exists"
            )
        self.layer_nbytes = tuple(int(n) for n in layer_nbytes)
        self.budget_nbytes = int(budget_nbytes)
        self.policy = policy
        self.config = config or UpmemConfig()
        self._resident: Dict[int, int] = {}  # layer -> lru tick of last use
        self._tick = 0
        self.events: List[StageEvent] = []
        self.stages = 0
        self.evictions = 0

    @property
    def all_fit(self) -> bool:
        """Whole model under budget: the schedule degenerates to the
        existing load-once staging model (L stages, zero evictions)."""
        return sum(self.layer_nbytes) <= self.budget_nbytes

    @property
    def resident_layers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._resident))

    @property
    def resident_nbytes(self) -> int:
        return sum(self.layer_nbytes[l] for l in self._resident)

    # -- the schedule --------------------------------------------------------
    def _victim(self, incoming: int) -> int:
        """Deterministic eviction choice among resident layers."""
        if self.policy == "lru":
            return min(self._resident, key=lambda l: (self._resident[l], l))
        # Belady under the cyclic access pattern: next use of resident
        # layer r while staging layer l is (r - l) mod L steps away;
        # evict the furthest (the layer just behind the cursor).
        n = len(self.layer_nbytes)
        return max(
            self._resident, key=lambda l: ((l - incoming) % n, l)
        )

    def access(self, step: int, layer: int) -> List[StageEvent]:
        """Serve one layer access of one decode step.

        Returns the transitions it forced: nothing for a resident hit,
        otherwise the evictions needed to make room followed by the
        stage of ``layer`` (charged at the explicit-transfer rate).
        """
        if not 0 <= layer < len(self.layer_nbytes):
            raise ResidencyError(
                f"layer {layer} out of range for"
                f" {len(self.layer_nbytes)} layers"
            )
        self._tick += 1
        if layer in self._resident:
            self._resident[layer] = self._tick
            return []
        new_events: List[StageEvent] = []
        need = self.layer_nbytes[layer]
        while self.resident_nbytes + need > self.budget_nbytes:
            victim = self._victim(layer)
            del self._resident[victim]
            self.evictions += 1
            new_events.append(
                StageEvent(
                    step=step,
                    layer=victim,
                    action="evict",
                    nbytes=self.layer_nbytes[victim],
                    seconds=0.0,
                )
            )
        self._resident[layer] = self._tick
        self.stages += 1
        new_events.append(
            StageEvent(
                step=step,
                layer=layer,
                action="stage",
                nbytes=need,
                seconds=h2d_seconds(need, self.config),
            )
        )
        self.events.extend(new_events)
        from ..obs import current_tracer

        tracer = current_tracer()
        if tracer.enabled:
            for event in new_events:
                if event.action == "stage":
                    tracer.timed_span(
                        f"stage L{event.layer}",
                        track="residency",
                        cat="residency",
                        dur_s=event.seconds,
                        args={"step": event.step, "nbytes": event.nbytes},
                    )
                else:  # evictions are free: a point, not an extent
                    tracer.instant(
                        f"evict L{event.layer}",
                        track="residency",
                        cat="residency",
                        args={"step": event.step, "nbytes": event.nbytes},
                    )
        return new_events

    def plan(self, steps: int) -> List[StageEvent]:
        """Dry-run the full cyclic schedule for ``steps`` decode steps
        on a *copy* of the current state — the offline schedule a
        deployment would precompute — without disturbing this planner."""
        shadow = WeightResidencyPlanner(
            self.layer_nbytes, self.budget_nbytes, self.policy, self.config
        )
        shadow._resident = dict(self._resident)
        shadow._tick = self._tick
        out: List[StageEvent] = []
        for step in range(steps):
            for layer in range(len(self.layer_nbytes)):
                out.extend(shadow.access(step, layer))
        return out

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "policy": self.policy,
            "layers": len(self.layer_nbytes),
            "budget_bytes": self.budget_nbytes,
            "resident_layers": len(self._resident),
            "resident_bytes": self.resident_nbytes,
            "all_fit": self.all_fit,
            "stages": self.stages,
            "evictions": self.evictions,
            "staging_seconds": sum(e.seconds for e in self.events),
        }
