"""``repro.decode`` — full-model decode over managed device memory.

The layer above single-step graph execution: run an N-layer GPT-J model
for T tokens, where the KV cache grows page by page
(:class:`PagedKVCache` — block tables over a fixed page pool, growth
without replanning the step graph), layer weights stage and evict under
an MRAM budget (:class:`WeightResidencyPlanner` — offline-optimal
"belady" or "lru" over the cyclic layer scan), and one
:class:`~repro.serve.pool.ExecutablePool` keeps every shared program
compiled exactly once across all layers, steps, and capacity epochs
(:class:`DecodeEngine`).

Quick tour::

    from repro.decode import DecodeEngine

    engine = DecodeEngine(layers=2, page_tokens=4)
    result = engine.decode(tokens=6, prompt_tokens=4)
    print(result.totals(), result.replans)
    for row in result.per_layer_totals():
        print(row)

Every number a decode run reports — compute, boundary transfers, weight
staging, cache growth — is deterministic: bit-for-bit identical at any
``max_workers`` and under ``REPRO_SIM_MODE=verify``.
"""

from .engine import DecodeEngine, DecodeResult, StepReport
from .kv_cache import CacheError, CacheExtension, PagedKVCache, h2d_seconds
from .residency import ResidencyError, StageEvent, WeightResidencyPlanner

__all__ = [
    "DecodeEngine",
    "DecodeResult",
    "StepReport",
    "PagedKVCache",
    "CacheExtension",
    "CacheError",
    "h2d_seconds",
    "WeightResidencyPlanner",
    "StageEvent",
    "ResidencyError",
]
