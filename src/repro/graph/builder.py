"""Graph builders: the GPT-J decoder layer as a whole decode step.

One decode step of a GPT-J layer (batch 1, ``tokens`` cached positions)
built from the paper's shape helpers (:func:`repro.workloads.fc_shapes`
gives the four FC-layer MTVs; attention is the per-head MMTV family of
Fig. 10):

* ``qkv_gen``  — MTV (3d x d) producing the fused Q/K/V vector;
* per head ``h``: a glue slice extracting the head's query, the
  attention-score MMTV ``(1, tokens, head_dim)`` against the resident
  K cache, a scaled-softmax glue, and the value MTV ``(head_dim,
  tokens)`` against the (transposed) resident V cache;
* ``concat_heads`` glue, then ``attn_proj`` — MTV (d x d);
* the parallel GPT-J FF branch: ``fc`` — MTV (4d x d), ``gelu`` glue,
  ``fc_proj`` — MTV (d x 4d);
* two ``va`` residual adds folding attention and FF back into the
  stream (GPT-J's parallel block: ``y = x + attn + ff``; layer norms
  are omitted — they move no tensor the planner or the placement story
  cares about).

Weights and the KV cache enter the graph as *const* external inputs —
staged once per load, exactly like :attr:`Workload.const_inputs` in the
serving model.  Matrix-vector nodes carry pinned small-grid schedule
params by default (:func:`small_grid_params`): a decode step executes
every node functionally, and canonical max-parallelism grids cost
seconds of simulator *host* time per node without changing the
simulated-latency story.

``GPTJ_SIM`` is the scaled configuration the end-to-end experiment
defaults to — the real GPT-J 6B/30B configs build the same graph, but a
single 16384x4096 FC is minutes of functional simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .. import te
from ..workloads import GPTJConfig, Workload, fc_mtv, mmtv, mtv, va
from .ir import ModelGraph

__all__ = [
    "GPTJ_SIM",
    "small_grid_params",
    "gptj_decoder_graph",
    "gptj_model_graph",
]

#: Scaled GPT-J configuration for functional end-to-end runs: the same
#: graph topology as 6B (``n_heads * head_dim == d_model``), sized so a
#: full decode step simulates in seconds.
GPTJ_SIM = GPTJConfig("gptj-6b-sim", n_heads=4, d_model=128, head_dim=32)


def _pow2_at_most(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


def small_grid_params(
    workload: Workload, max_dpus: int = 64
) -> Dict[str, int]:
    """Pinned small-grid schedule params for one graph node.

    Keeps functional simulation cheap while leaving idle DPU groups for
    the serving layer to replicate batches across.  Simulated latency is
    unaffected by the host-side cost of the grid choice.  The default
    grid cap was 8 DPUs when every grid point was interpreted one at a
    time; the vectorized NumPy backend executes the whole grid as one
    lane axis, so suites now afford 64.
    """
    name = workload.name
    if name in ("va", "geva"):
        (n,) = workload.shape
        return {
            "n_dpus": min(max_dpus, _pow2_at_most(n)),
            "n_tasklets": 2,
            "cache": min(64, _pow2_at_most(n)),
            "unroll": 0,
        }
    if name == "red":
        (n,) = workload.shape
        return {
            "n_dpus": min(max_dpus, _pow2_at_most(n)),
            "n_tasklets": 2,
            "cache": min(64, _pow2_at_most(n)),
            "dpu_combine": 0,
            "host_threads": 1,
            "unroll": 0,
        }
    if name in ("mtv", "gemv"):
        m, k = workload.shape
        return {
            "m_dpus": min(max_dpus, _pow2_at_most(m)),
            "k_dpus": 1,
            "n_tasklets": 2,
            "cache": min(64, _pow2_at_most(k)),
            "host_threads": 1,
            "unroll": 0,
        }
    if name in ("ttv", "mmtv"):
        m, n, k = workload.shape
        return {
            "i_dpus": min(max_dpus, _pow2_at_most(m)),
            "j_dpus": min(2, _pow2_at_most(n)),
            "k_dpus": 1,
            "n_tasklets": 2,
            "cache": min(64, _pow2_at_most(k)),
            "host_threads": 1,
            "unroll": 0,
        }
    raise KeyError(f"no small-grid params for workload {name!r}")


def _glue(
    name: str,
    inputs: List[te.Tensor],
    out_shape,
    reference,
    flops: float,
    params: Optional[Dict[str, int]] = None,
) -> Workload:
    """A host-only glue workload: numpy reference semantics, placeholder
    output (no PIM sketch — the placement pass keeps it off the device).
    """
    out = te.placeholder(tuple(out_shape), "float32", "C")
    return Workload(
        name=name,
        inputs=inputs,
        output=out,
        reference=reference,
        flops=flops,
        shape=tuple(out_shape),
        params=dict(params or {}),
    )


def gptj_decoder_graph(
    config: GPTJConfig = GPTJ_SIM,
    tokens: int = 16,
    params: Optional[Dict[str, Dict[str, int]]] = None,
    pin_small_grids: bool = True,
) -> ModelGraph:
    """Build one GPT-J decoder-layer decode step as a :class:`ModelGraph`.

    ``params`` overrides the pinned schedule params per *node name*;
    ``pin_small_grids=False`` leaves matvec nodes unpinned so a tuned
    pool (``tuned=True`` + a tuning db) resolves their parameters.
    """
    if config.n_heads * config.head_dim != config.d_model:
        raise ValueError(
            f"{config.name}: n_heads*head_dim"
            f" ({config.n_heads}*{config.head_dim}) must equal d_model"
            f" ({config.d_model})"
        )
    d, hd, heads = config.d_model, config.head_dim, config.n_heads
    overrides = params or {}

    def node_params(node_name: str, wl: Workload) -> Optional[Dict[str, int]]:
        if node_name in overrides:
            return overrides[node_name]
        return small_grid_params(wl) if pin_small_grids else None

    g = ModelGraph(f"{config.name}-decoder-t{tokens}")
    g.add_input("x", (d,))
    g.add_input("w_qkv", (3 * d, d), const=True)
    g.add_input("w_proj", (d, d), const=True)
    g.add_input("w_fc", (4 * d, d), const=True)
    g.add_input("w_fc_proj", (d, 4 * d), const=True)
    for h in range(heads):
        g.add_input(f"k_cache_{h}", (1, tokens, hd), const=True)
        # V stored transposed so the value contraction is a plain MTV.
        g.add_input(f"v_cache_t_{h}", (hd, tokens), const=True)

    # -- attention branch ---------------------------------------------------
    qkv = fc_mtv(config, "qkv_gen")
    g.add_node(
        "qkv_gen", qkv, {"A": "w_qkv", "B": "x"}, "qkv",
        params=node_params("qkv_gen", qkv), tags=("attn",),
    )

    # Shared per-head workloads: every head is the same program, so the
    # pool compiles each once and all heads reuse it.
    score_wl = mmtv(1, tokens, hd)
    score_wl.params.update({"model": config.name, "layer": "mha_score"})
    value_wl = mtv(hd, tokens)
    value_wl.params.update({"model": config.name, "layer": "mha_value"})
    scale = float(np.sqrt(hd))

    def softmax_ref(s: np.ndarray) -> np.ndarray:
        z = s[0].astype(np.float32) / np.float32(scale)
        z = z - z.max()
        e = np.exp(z)
        return (e / e.sum()).astype(np.float32)

    softmax_wl = _glue(
        "softmax",
        [te.placeholder((1, tokens), "float32", "S")],
        (tokens,),
        softmax_ref,
        flops=5.0 * tokens,
        params={"tokens": tokens, "scale_dim": hd},
    )

    for h in range(heads):
        off = h * hd
        slice_wl = _glue(
            "slice_q",
            [te.placeholder((3 * d,), "float32", "A")],
            (1, hd),
            # Default-bound args pin this head's window: closures over
            # the loop variable would all slice the last head.
            lambda a, off=off: a[None, off:off + hd],
            flops=0.0,
            params={"offset": off, "width": hd},
        )
        g.add_node(
            f"slice_q_{h}", slice_wl, {"A": "qkv"}, f"q_{h}",
            tags=("attn", "glue"),
        )
        g.add_node(
            f"attn_score_{h}", score_wl,
            {"A": f"k_cache_{h}", "B": f"q_{h}"}, f"score_{h}",
            params=node_params(f"attn_score_{h}", score_wl), tags=("attn",),
        )
        g.add_node(
            f"softmax_{h}", softmax_wl, {"S": f"score_{h}"}, f"probs_{h}",
            tags=("attn", "glue"),
        )
        g.add_node(
            f"attn_value_{h}", value_wl,
            {"A": f"v_cache_t_{h}", "B": f"probs_{h}"}, f"head_{h}",
            params=node_params(f"attn_value_{h}", value_wl), tags=("attn",),
        )

    concat_wl = _glue(
        "concat_heads",
        [te.placeholder((hd,), "float32", f"H{h}") for h in range(heads)],
        (d,),
        lambda *hs: np.concatenate(hs).astype(np.float32),
        flops=0.0,
        params={"heads": heads, "width": hd},
    )
    g.add_node(
        "concat_heads", concat_wl,
        {f"H{h}": f"head_{h}" for h in range(heads)}, "attn_concat",
        tags=("attn", "glue"),
    )
    proj = fc_mtv(config, "qkv_proj")
    g.add_node(
        "attn_proj", proj, {"A": "w_proj", "B": "attn_concat"}, "attn_out",
        params=node_params("attn_proj", proj), tags=("attn",),
    )

    # -- feed-forward branch (parallel to attention in GPT-J) ---------------
    fc = fc_mtv(config, "fc")
    g.add_node(
        "fc", fc, {"A": "w_fc", "B": "x"}, "ffn_hidden",
        params=node_params("fc", fc), tags=("ffn",),
    )

    def gelu_ref(a: np.ndarray) -> np.ndarray:
        a = a.astype(np.float32)
        c = np.float32(np.sqrt(2.0 / np.pi))
        return (
            np.float32(0.5) * a
            * (np.float32(1.0) + np.tanh(c * (a + np.float32(0.044715) * a ** 3)))
        ).astype(np.float32)

    gelu_wl = _glue(
        "gelu",
        [te.placeholder((4 * d,), "float32", "A")],
        (4 * d,),
        gelu_ref,
        flops=8.0 * 4 * d,
        params={"n": 4 * d},
    )
    g.add_node(
        "gelu", gelu_wl, {"A": "ffn_hidden"}, "ffn_act", tags=("ffn", "glue")
    )
    fc_proj = fc_mtv(config, "fc_proj")
    g.add_node(
        "fc_proj", fc_proj, {"A": "w_fc_proj", "B": "ffn_act"}, "ffn_out",
        params=node_params("fc_proj", fc_proj), tags=("ffn",),
    )

    # -- residual stream: y = x + attn_out + ffn_out ------------------------
    residual_wl = va(d)
    g.add_node(
        "residual_attn", residual_wl, {"A": "x", "B": "attn_out"}, "resid_1",
        params=node_params("residual_attn", residual_wl), tags=("glue",),
    )
    g.add_node(
        "residual_out", residual_wl, {"A": "resid_1", "B": "ffn_out"}, "y",
        params=node_params("residual_out", residual_wl), tags=("glue",),
    )
    g.validate()
    return g


def gptj_model_graph(
    config: GPTJConfig = GPTJ_SIM,
    layers: int = 2,
    capacity: int = 16,
    params: Optional[Dict[str, Dict[str, int]]] = None,
    pin_small_grids: bool = True,
) -> ModelGraph:
    """Build an N-layer GPT-J decode step sized for a *paged* KV cache.

    The multi-layer counterpart of :func:`gptj_decoder_graph`, shaped so
    one compiled program pool serves every layer of every decode step:

    * ``capacity`` is the KV cache's **allocated** length (a whole
      number of pages), not the sequence length.  Attention reads all
      ``capacity`` positions; an ``attn_mask`` *dynamic* input (0 for
      valid positions, ``-inf`` for unwritten tail slots) folds into the
      scaled softmax, so two steps at different sequence lengths but the
      same page allocation build **structurally identical** graphs — no
      recompile, no replanning, just a new mask vector.  Only crossing a
      page boundary (a bigger ``capacity``) yields a new graph, and even
      then every capacity-independent program pool-hits.
    * every workload instance is shared across layers — all N ``fc``
      nodes bind one :class:`Workload`, so the
      :class:`~repro.serve.pool.ExecutablePool` compiles each program
      once for the whole model;
    * each layer additionally emits its freshly generated key/value rows
      (``k_new_L{l}`` / ``v_new_L{l}``, sliced from the fused QKV
      vector) as graph outputs, so a decode engine can append them to
      the managed cache — the explicit cache-extension transfer — and
      the next step attends over them.

    Tensor naming: layer ``l`` reads hidden state ``h{l}`` (``h0`` is
    aliased to the graph input ``x``) and writes ``h{l+1}``; weights are
    ``w_qkv_L{l}``/``w_proj_L{l}``/``w_fc_L{l}``/``w_fc_proj_L{l}`` and
    per-head caches ``k_cache_L{l}_h{h}`` / ``v_cache_t_L{l}_h{h}``, all
    const (device-resident, staged per the weight-residency plan).
    ``params`` overrides pinned schedule params by *generic* node name
    (``"fc"``, ``"attn_score"``, ...), applied to every layer — per-layer
    parameter splits would defeat the program sharing this graph exists
    to provide.
    """
    if config.n_heads * config.head_dim != config.d_model:
        raise ValueError(
            f"{config.name}: n_heads*head_dim"
            f" ({config.n_heads}*{config.head_dim}) must equal d_model"
            f" ({config.d_model})"
        )
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    d, hd, heads = config.d_model, config.head_dim, config.n_heads
    overrides = params or {}

    def node_params(generic: str, wl: Workload) -> Optional[Dict[str, int]]:
        if generic in overrides:
            return overrides[generic]
        return small_grid_params(wl) if pin_small_grids else None

    g = ModelGraph(f"{config.name}-model-L{layers}-c{capacity}")
    g.add_input("x", (d,))
    g.add_input("attn_mask", (capacity,))
    for layer in range(layers):
        g.add_input(f"w_qkv_L{layer}", (3 * d, d), const=True)
        g.add_input(f"w_proj_L{layer}", (d, d), const=True)
        g.add_input(f"w_fc_L{layer}", (4 * d, d), const=True)
        g.add_input(f"w_fc_proj_L{layer}", (d, 4 * d), const=True)
        for h in range(heads):
            g.add_input(f"k_cache_L{layer}_h{h}", (1, capacity, hd), const=True)
            g.add_input(f"v_cache_t_L{layer}_h{h}", (hd, capacity), const=True)

    # -- workloads shared by every layer (one compiled program each) --------
    qkv_wl = fc_mtv(config, "qkv_gen")
    proj_wl = fc_mtv(config, "qkv_proj")
    fc_wl = fc_mtv(config, "fc")
    fc_proj_wl = fc_mtv(config, "fc_proj")
    score_wl = mmtv(1, capacity, hd)
    score_wl.params.update({"model": config.name, "layer": "mha_score"})
    value_wl = mtv(hd, capacity)
    value_wl.params.update({"model": config.name, "layer": "mha_value"})
    scale = float(np.sqrt(hd))

    def masked_softmax_ref(s: np.ndarray, m: np.ndarray) -> np.ndarray:
        z = s[0].astype(np.float32) / np.float32(scale) + m.astype(np.float32)
        z = z - z.max()
        e = np.exp(z)
        return (e / e.sum()).astype(np.float32)

    softmax_wl = _glue(
        "masked_softmax",
        [
            te.placeholder((1, capacity), "float32", "S"),
            te.placeholder((capacity,), "float32", "M"),
        ],
        (capacity,),
        masked_softmax_ref,
        flops=6.0 * capacity,
        params={"capacity": capacity, "scale_dim": hd},
    )
    slice_q_wls = []
    for h in range(heads):
        off = h * hd
        slice_q_wls.append(
            _glue(
                "slice_q",
                [te.placeholder((3 * d,), "float32", "A")],
                (1, hd),
                lambda a, off=off: a[None, off:off + hd],
                flops=0.0,
                params={"offset": off, "width": hd},
            )
        )
    slice_k_wl = _glue(
        "slice_kv",
        [te.placeholder((3 * d,), "float32", "A")],
        (d,),
        lambda a: a[d:2 * d],
        flops=0.0,
        params={"offset": d, "width": d},
    )
    slice_v_wl = _glue(
        "slice_kv",
        [te.placeholder((3 * d,), "float32", "A")],
        (d,),
        lambda a: a[2 * d:3 * d],
        flops=0.0,
        params={"offset": 2 * d, "width": d},
    )
    concat_wl = _glue(
        "concat_heads",
        [te.placeholder((hd,), "float32", f"H{h}") for h in range(heads)],
        (d,),
        lambda *hs: np.concatenate(hs).astype(np.float32),
        flops=0.0,
        params={"heads": heads, "width": hd},
    )

    def gelu_ref(a: np.ndarray) -> np.ndarray:
        a = a.astype(np.float32)
        c = np.float32(np.sqrt(2.0 / np.pi))
        return (
            np.float32(0.5) * a
            * (np.float32(1.0) + np.tanh(c * (a + np.float32(0.044715) * a ** 3)))
        ).astype(np.float32)

    gelu_wl = _glue(
        "gelu",
        [te.placeholder((4 * d,), "float32", "A")],
        (4 * d,),
        gelu_ref,
        flops=8.0 * 4 * d,
        params={"n": 4 * d},
    )
    residual_wl = va(d)

    # -- the token step: every layer, one new position ----------------------
    for layer in range(layers):
        L = f"L{layer}"
        x_name = "x" if layer == 0 else f"h{layer}"
        g.add_node(
            f"{L}.qkv_gen", qkv_wl,
            {"A": f"w_qkv_L{layer}", "B": x_name}, f"qkv_{L}",
            params=node_params("qkv_gen", qkv_wl), tags=("attn",),
        )
        g.add_node(
            f"{L}.slice_k", slice_k_wl, {"A": f"qkv_{L}"}, f"k_new_{L}",
            tags=("attn", "glue", "kv"),
        )
        g.add_node(
            f"{L}.slice_v", slice_v_wl, {"A": f"qkv_{L}"}, f"v_new_{L}",
            tags=("attn", "glue", "kv"),
        )
        for h in range(heads):
            g.add_node(
                f"{L}.slice_q_{h}", slice_q_wls[h],
                {"A": f"qkv_{L}"}, f"q_{L}_h{h}",
                tags=("attn", "glue"),
            )
            g.add_node(
                f"{L}.attn_score_{h}", score_wl,
                {"A": f"k_cache_L{layer}_h{h}", "B": f"q_{L}_h{h}"},
                f"score_{L}_h{h}",
                params=node_params("attn_score", score_wl), tags=("attn",),
            )
            g.add_node(
                f"{L}.softmax_{h}", softmax_wl,
                {"S": f"score_{L}_h{h}", "M": "attn_mask"},
                f"probs_{L}_h{h}",
                tags=("attn", "glue"),
            )
            g.add_node(
                f"{L}.attn_value_{h}", value_wl,
                {"A": f"v_cache_t_L{layer}_h{h}", "B": f"probs_{L}_h{h}"},
                f"head_{L}_h{h}",
                params=node_params("attn_value", value_wl), tags=("attn",),
            )
        g.add_node(
            f"{L}.concat_heads", concat_wl,
            {f"H{h}": f"head_{L}_h{h}" for h in range(heads)},
            f"attn_concat_{L}",
            tags=("attn", "glue"),
        )
        g.add_node(
            f"{L}.attn_proj", proj_wl,
            {"A": f"w_proj_L{layer}", "B": f"attn_concat_{L}"},
            f"attn_out_{L}",
            params=node_params("attn_proj", proj_wl), tags=("attn",),
        )
        g.add_node(
            f"{L}.fc", fc_wl, {"A": f"w_fc_L{layer}", "B": x_name},
            f"ffn_hidden_{L}",
            params=node_params("fc", fc_wl), tags=("ffn",),
        )
        g.add_node(
            f"{L}.gelu", gelu_wl, {"A": f"ffn_hidden_{L}"}, f"ffn_act_{L}",
            tags=("ffn", "glue"),
        )
        g.add_node(
            f"{L}.fc_proj", fc_proj_wl,
            {"A": f"w_fc_proj_L{layer}", "B": f"ffn_act_{L}"}, f"ffn_out_{L}",
            params=node_params("fc_proj", fc_proj_wl), tags=("ffn",),
        )
        g.add_node(
            f"{L}.residual_attn", residual_wl,
            {"A": x_name, "B": f"attn_out_{L}"}, f"resid_{L}",
            params=node_params("residual_attn", residual_wl), tags=("glue",),
        )
        g.add_node(
            f"{L}.residual_out", residual_wl,
            {"A": f"resid_{L}", "B": f"ffn_out_{L}"}, f"h{layer + 1}",
            params=node_params("residual_out", residual_wl), tags=("glue",),
        )
    g.validate()
    return g
