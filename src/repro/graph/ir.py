"""Model-graph IR: named tensors, operator nodes, deterministic order.

A :class:`ModelGraph` is a DAG of :class:`Node` operators over *named
graph tensors*.  Every tensor is either an external input (declared with
:meth:`ModelGraph.add_input`, optionally constant — weights, the KV
cache) or the output of exactly one node; a node binds each of its
workload's input tensors to a graph tensor by name.  Graphs validate
structurally (unique names, resolvable references, shape agreement,
acyclicity) and expose a *deterministic* topological order — ties break
on node insertion order, so two identically built graphs schedule, plan
memory and charge latency identically on any machine.

The graph is the unit the rest of the stack consumes: ``repro.compile``
turns one into a :class:`~repro.graph.executable.GraphExecutable`, the
serving pool keys requests by :meth:`ModelGraph.structural_signature`,
and the memory planner walks :meth:`topological_order`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import te
from ..pipeline import workload_signature
from ..target.base import Target
from ..workloads import Workload

__all__ = ["GraphError", "Node", "ModelGraph"]


def _target_identity(target: Any):
    """Signature-stable identity of a per-node target override.

    Full compile-relevant identity for Target instances — kind alone
    would alias differently-configured instances of one backend, the
    aliasing the serving pool's keying explicitly prevents.
    """
    if target is None:
        return None
    if isinstance(target, Target):
        return (
            target.kind,
            repr(getattr(target, "config", None)),
            target.cache_token(),
        )
    return str(target)


class GraphError(ValueError):
    """A model graph is structurally invalid."""


@dataclass
class Node:
    """One operator: a workload plus its graph-tensor wiring.

    ``inputs`` maps the *workload's* input tensor names (``"A"``,
    ``"B"``, ...) to graph tensor names; ``output`` names the graph
    tensor this node defines.  ``target`` optionally pins the node to a
    backend, overriding whatever the placement pass would choose;
    ``params`` carries explicit schedule parameters for compiling
    targets (serving-grade graphs pin small grids — the canonical
    max-parallelism defaults cost seconds of simulator host time per
    run).  ``tags`` label the node for placement policies (``"glue"``,
    ``"attn"``, ``"ffn"``, ...).
    """

    name: str
    workload: Workload
    inputs: Dict[str, str]
    output: str
    target: Optional[Any] = None
    params: Optional[Dict[str, int]] = None
    tags: frozenset = frozenset()

    def input_bindings(self) -> List[Tuple[str, str, Tuple[int, ...]]]:
        """(workload input name, graph tensor name, expected shape) in
        the workload's declared input order."""
        out = []
        for tensor in self.workload.inputs:
            try:
                graph_name = self.inputs[tensor.name]
            except KeyError:
                raise GraphError(
                    f"node {self.name!r} does not bind workload input"
                    f" {tensor.name!r} (binds {sorted(self.inputs)})"
                ) from None
            out.append((tensor.name, graph_name, tuple(tensor.shape)))
        return out


class ModelGraph:
    """A validated DAG of workloads over named tensors."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        #: External inputs as TE placeholders (name -> Tensor); the
        #: placeholder carries shape/dtype/nbytes, so the graph presents
        #: the same ``inputs`` surface as a :class:`Workload` (the serve
        #: timing model reads ``t.buffer.nbytes`` off it).
        self._inputs: "Dict[str, te.Tensor]" = {}
        self._const: set = set()
        self.nodes: List[Node] = []
        self._producers: Dict[str, Node] = {}

    # -- construction -------------------------------------------------------
    def add_input(
        self,
        name: str,
        shape: Sequence[int],
        dtype: str = "float32",
        const: bool = False,
    ) -> str:
        """Declare an external input tensor.  ``const`` marks weights /
        KV-cache tensors that stay resident on the device across runs
        (staged once per load, like :attr:`Workload.const_inputs`)."""
        if name in self._inputs or name in self._producers:
            raise GraphError(f"tensor {name!r} is already defined")
        self._inputs[name] = te.placeholder(tuple(shape), dtype, name)
        if const:
            self._const.add(name)
        return name

    def add_node(
        self,
        name: str,
        workload: Workload,
        inputs: Dict[str, str],
        output: str,
        target: Optional[Any] = None,
        params: Optional[Dict[str, int]] = None,
        tags: Sequence[str] = (),
    ) -> Node:
        """Append an operator node.  Forward references to tensors that
        a later node defines are allowed; :meth:`validate` settles them."""
        if any(node.name == name for node in self.nodes):
            raise GraphError(f"node {name!r} is already defined")
        if output in self._inputs or output in self._producers:
            raise GraphError(f"tensor {output!r} is already defined")
        node = Node(
            name=name,
            workload=workload,
            inputs=dict(inputs),
            output=output,
            target=target,
            params=dict(params) if params else None,
            tags=frozenset(tags),
        )
        self.nodes.append(node)
        self._producers[output] = node
        return node

    # -- tensors ------------------------------------------------------------
    @property
    def inputs(self) -> List[te.Tensor]:
        """External input placeholders, in declaration order."""
        return list(self._inputs.values())

    @property
    def const_inputs(self) -> frozenset:
        """Names of external inputs resident across runs (weights, KV)."""
        return frozenset(self._const)

    @property
    def input_names(self) -> List[str]:
        return list(self._inputs)

    @property
    def output_names(self) -> List[str]:
        """Graph outputs: node-defined tensors no node consumes, in
        producing-node order."""
        consumed = {g for node in self.nodes for g in node.inputs.values()}
        return [
            node.output for node in self.nodes if node.output not in consumed
        ]

    def tensor_shape(self, name: str) -> Tuple[int, ...]:
        if name in self._inputs:
            return tuple(self._inputs[name].shape)
        try:
            return tuple(self._producers[name].workload.output.shape)
        except KeyError:
            raise GraphError(f"unknown tensor {name!r}") from None

    def tensor_nbytes(self, name: str) -> int:
        if name in self._inputs:
            return self._inputs[name].buffer.nbytes
        try:
            return self._producers[name].workload.output.buffer.nbytes
        except KeyError:
            raise GraphError(f"unknown tensor {name!r}") from None

    def producer(self, name: str) -> Optional[Node]:
        """The node defining ``name`` (None for external inputs)."""
        return self._producers.get(name)

    def consumers(self, name: str) -> List[Node]:
        """Nodes reading ``name``, in insertion order."""
        return [n for n in self.nodes if name in n.inputs.values()]

    # -- validation / ordering ----------------------------------------------
    def validate(self) -> None:
        """Check structure: every reference resolves, shapes agree, the
        graph is acyclic, and there is at least one output."""
        if not self.nodes:
            raise GraphError(f"graph {self.name!r} has no nodes")
        for node in self.nodes:
            for wl_name, graph_name, shape in node.input_bindings():
                if (
                    graph_name not in self._inputs
                    and graph_name not in self._producers
                ):
                    raise GraphError(
                        f"node {node.name!r} reads undefined tensor"
                        f" {graph_name!r}"
                    )
                got = self.tensor_shape(graph_name)
                if got != shape:
                    raise GraphError(
                        f"node {node.name!r} input {wl_name!r} expects"
                        f" shape {shape}, but tensor {graph_name!r} has"
                        f" shape {got}"
                    )
            extra = set(node.inputs) - {
                t.name for t in node.workload.inputs
            }
            if extra:
                raise GraphError(
                    f"node {node.name!r} binds unknown workload inputs"
                    f" {sorted(extra)}"
                )
        self.topological_order()  # raises on cycles
        if not self.output_names:
            raise GraphError(f"graph {self.name!r} has no outputs")

    def topological_order(self) -> List[Node]:
        """Kahn's algorithm with insertion-order tie-breaking: among
        ready nodes, the earliest-added runs first.  Purely structural —
        the same graph orders identically everywhere."""
        index = {node.name: i for i, node in enumerate(self.nodes)}
        deps: Dict[str, List[str]] = {}
        dependents: Dict[str, List[str]] = {n.name: [] for n in self.nodes}
        for node in self.nodes:
            node_deps = []
            for graph_name in node.inputs.values():
                producer = self._producers.get(graph_name)
                if producer is not None and producer.name != node.name:
                    node_deps.append(producer.name)
            deps[node.name] = node_deps
            for d in node_deps:
                dependents.setdefault(d, []).append(node.name)
        remaining = {name: len(set(ds)) for name, ds in deps.items()}
        ready = sorted(
            (name for name, n in remaining.items() if n == 0),
            key=index.__getitem__,
        )
        order: List[Node] = []
        by_name = {node.name: node for node in self.nodes}
        while ready:
            name = ready.pop(0)
            order.append(by_name[name])
            freed = []
            for dep in set(dependents.get(name, ())):
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    freed.append(dep)
            if freed:
                ready = sorted(ready + freed, key=index.__getitem__)
        if len(order) != len(self.nodes):
            stuck = sorted(set(by_name) - {n.name for n in order})
            raise GraphError(f"graph {self.name!r} has a cycle through {stuck}")
        return order

    def levels(self) -> List[List[Node]]:
        """Topological waves: every node's dependencies live in strictly
        earlier levels, so the nodes of one level are independent and may
        execute concurrently."""
        depth: Dict[str, int] = {}
        levels: Dict[int, List[Node]] = {}
        for node in self.topological_order():
            d = 0
            for graph_name in node.inputs.values():
                producer = self._producers.get(graph_name)
                if producer is not None:
                    d = max(d, depth[producer.name] + 1)
            depth[node.name] = d
            levels.setdefault(d, []).append(node)
        return [levels[d] for d in sorted(levels)]

    # -- identity -----------------------------------------------------------
    def structural_signature(self) -> tuple:
        """Stable structural identity for cache/pool keying: two
        separately built but identical graphs share compiled programs
        and batch together in the server; any difference in wiring,
        shapes, per-node params or target overrides separates them."""
        return (
            "modelgraph",
            self.name,
            tuple(
                (
                    name,
                    tuple(tensor.shape),
                    tensor.dtype,
                    name in self._const,
                )
                for name, tensor in self._inputs.items()
            ),
            tuple(
                (
                    node.name,
                    workload_signature(node.workload),
                    tuple(sorted(node.inputs.items())),
                    node.output,
                    # Tags and overrides steer placement, and placement
                    # picks the compiled program — they must separate
                    # batch keys exactly like params do.
                    _target_identity(node.target),
                    tuple(sorted(node.tags)),
                    tuple(sorted((node.params or {}).items())),
                )
                for node in self.nodes
            ),
        )

    # -- reference execution -------------------------------------------------
    def random_inputs(self, seed: int = 0) -> Dict[str, np.ndarray]:
        """Random arrays for every external input (same convention as
        :meth:`Workload.random_inputs`)."""
        rng = np.random.default_rng(seed)
        return {
            name: rng.random(tuple(t.shape), dtype=np.float32)
            for name, t in self._inputs.items()
        }

    def reference_outputs(
        self, inputs: Dict[str, np.ndarray], all_tensors: bool = False
    ) -> Dict[str, np.ndarray]:
        """NumPy reference of the whole graph: every node's reference
        implementation, in topological order.  Returns the graph outputs
        (or every tensor with ``all_tensors=True``)."""
        env: Dict[str, np.ndarray] = dict(inputs)
        for node in self.topological_order():
            args = [
                env[graph_name]
                for _, graph_name, _ in node.input_bindings()
            ]
            env[node.output] = node.workload.reference(*args)
        if all_tensors:
            return env
        return {name: env[name] for name in self.output_names}

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelGraph({self.name!r}: {len(self.nodes)} nodes,"
            f" {len(self._inputs)} inputs, {len(self.output_names)} outputs)"
        )
