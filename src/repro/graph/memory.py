"""Memory planning: linear-scan buffer reuse over the topological order.

A naive executor gives every intermediate tensor its own buffer, so a
decode step holds ``sum(nbytes of every node output)`` at once.  The
planner walks the graph's deterministic topological order, computes each
intermediate's live range ``[definition, last use]`` (graph outputs stay
live to the end), and linear-scans buffers into reusable *slots*: a
tensor whose last reader has already run frees its slot for the next
definition (best fit by size; a new slot opens only when nothing free
fits).  The resulting arena is what a memory-constrained host would
actually allocate for the serial schedule; weights and external inputs
are accounted separately since they are resident, not transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .ir import ModelGraph

__all__ = ["SlotAssignment", "MemoryPlan", "plan_memory", "arena_stats"]


def arena_stats(capacity: int, used: int) -> Dict[str, float]:
    """Utilization/fragmentation summary of any fixed-capacity arena.

    ``utilization`` is the fraction of the arena's capacity the live
    working set actually occupies; ``fragmentation`` is the complement —
    capacity held but not usable by the current occupants.  Shared by
    the intermediate-buffer plan below (capacity = planned arena bytes,
    used = serial live peak) and the paged KV-cache allocator in
    :mod:`repro.decode.kv_cache` (capacity = allocated page tokens,
    used = cached tokens), so both report residency waste in the same
    vocabulary.  An empty arena is fully utilized by convention.
    """
    if capacity <= 0:
        return {"utilization": 1.0, "fragmentation": 0.0}
    utilization = used / capacity
    return {"utilization": utilization, "fragmentation": 1.0 - utilization}


@dataclass(frozen=True)
class SlotAssignment:
    """Where one intermediate tensor lives and for how long."""

    tensor: str
    slot: int
    nbytes: int
    #: Positions in the topological order: defined at ``start``, last
    #: read at ``end`` (``end == len(order)`` for graph outputs).
    start: int
    end: int


@dataclass
class MemoryPlan:
    """Outcome of planning one graph's intermediates."""

    #: Final byte size of each reuse slot (a slot grows to the largest
    #: tensor it ever hosts).
    slot_sizes: List[int] = field(default_factory=list)
    assignments: List[SlotAssignment] = field(default_factory=list)
    #: Sum of slot sizes: bytes the planned arena actually needs.
    arena_bytes: int = 0
    #: Sum of every intermediate's size: the no-reuse allocation.
    naive_bytes: int = 0
    #: Max bytes simultaneously live under the serial schedule (lower
    #: bound no planner can beat).
    peak_live_bytes: int = 0
    #: Resident external tensors, split const (weights/KV) vs dynamic.
    weight_bytes: int = 0
    input_bytes: int = 0

    @property
    def reuse_ratio(self) -> float:
        """naive / arena — how much the planner shrank the footprint."""
        return self.naive_bytes / self.arena_bytes if self.arena_bytes else 1.0

    @property
    def utilization(self) -> float:
        """Serial live peak / arena: how much of the planned arena the
        schedule's working set actually fills (1.0 is a perfect pack)."""
        return arena_stats(self.arena_bytes, self.peak_live_bytes)[
            "utilization"
        ]

    @property
    def fragmentation(self) -> float:
        """1 - utilization: arena bytes held by slots but never
        simultaneously live (best-fit padding, size-mismatched reuse)."""
        return arena_stats(self.arena_bytes, self.peak_live_bytes)[
            "fragmentation"
        ]

    def slot_of(self, tensor: str) -> int:
        for a in self.assignments:
            if a.tensor == tensor:
                return a.slot
        raise KeyError(f"tensor {tensor!r} is not planned")

    def to_dict(self) -> Dict:
        """The ``--json`` payload."""
        return {
            "arena_bytes": self.arena_bytes,
            "naive_bytes": self.naive_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "weight_bytes": self.weight_bytes,
            "input_bytes": self.input_bytes,
            "slots": len(self.slot_sizes),
            "tensors": len(self.assignments),
            "reuse_ratio": self.reuse_ratio,
            **arena_stats(self.arena_bytes, self.peak_live_bytes),
        }


def plan_memory(graph: ModelGraph) -> MemoryPlan:
    """Plan intermediate-buffer reuse for ``graph``.

    Deterministic: depends only on the graph's structure (topological
    order, tensor sizes), never on placement, thread count or wall time.
    """
    graph.validate()
    order = graph.topological_order()
    position = {node.name: i for i, node in enumerate(order)}
    outputs = set(graph.output_names)

    # Live ranges of intermediates (node outputs), in definition order.
    ranges: List[Tuple[str, int, int, int]] = []  # (tensor, def, last, nbytes)
    for i, node in enumerate(order):
        last = len(order) if node.output in outputs else i
        for consumer in graph.consumers(node.output):
            last = max(last, position[consumer.name])
        ranges.append((node.output, i, last, graph.tensor_nbytes(node.output)))

    plan = MemoryPlan()
    plan.naive_bytes = sum(nbytes for _, _, _, nbytes in ranges)
    plan.weight_bytes = sum(
        graph.tensor_nbytes(n) for n in graph.input_names
        if n in graph.const_inputs
    )
    plan.input_bytes = sum(
        graph.tensor_nbytes(n) for n in graph.input_names
        if n not in graph.const_inputs
    )

    slot_sizes: List[int] = []
    free: List[int] = []  # indices of currently unoccupied slots
    expiry: List[Tuple[int, int]] = []  # (end, slot) of live tensors
    for tensor, start, end, nbytes in ranges:
        # Expire tensors whose last reader ran strictly before this
        # definition (a tensor read *by* the defining node must not
        # share its slot — that would alias an input with the output).
        for done_end, slot in list(expiry):
            if done_end < start:
                free.append(slot)
                expiry.remove((done_end, slot))
        # Best fit: the smallest free slot that holds the tensor;
        # otherwise grow the largest free slot / open a new one.
        fitting = sorted(
            (s for s in free if slot_sizes[s] >= nbytes),
            key=lambda s: (slot_sizes[s], s),
        )
        if fitting:
            slot = fitting[0]
            free.remove(slot)
        elif free:
            slot = max(free, key=lambda s: (slot_sizes[s], -s))
            free.remove(slot)
            slot_sizes[slot] = nbytes
        else:
            slot = len(slot_sizes)
            slot_sizes.append(nbytes)
        expiry.append((end, slot))
        plan.assignments.append(
            SlotAssignment(tensor, slot, nbytes, start, end)
        )

    # Peak concurrent live bytes under the serial schedule.
    peak = 0
    for i in range(len(order)):
        live = sum(
            nbytes for _, start, end, nbytes in ranges if start <= i <= end
        )
        peak = max(peak, live)
    plan.peak_live_bytes = peak
    plan.slot_sizes = slot_sizes
    plan.arena_bytes = sum(slot_sizes)
    return plan
