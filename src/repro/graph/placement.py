"""Placement: assign every graph node a Target.

The policy mirrors the paper's system split — the matrix-vector family
(MTV/GEMV/MMTV/TTV, the ops PIM wins on) compiles for the PIM target,
element-wise glue (slices, softmax, activations, residual adds) stays on
the host — with three stock policies:

* ``default`` — matvec ops on the PIM target, everything else on host;
* ``cpu``     — the whole graph on the host roofline (the paper's CPU
  baseline for a full decode step);
* ``mixed``   — attention matvecs (tagged ``attn``) on PIM, FC-layer
  matvecs on host: the hybrid the end-to-end experiment compares.

A node's explicit ``target`` override always wins; the pass validates
that an override (or a policy choice) can actually compile the node —
host-only glue forced onto a module-compiling backend is a
:class:`~repro.graph.ir.GraphError` at placement time, not a confusing
compile failure later.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..target import Target, get_target
from .ir import GraphError, ModelGraph, Node

__all__ = ["PIM_OP_NAMES", "PLACEMENT_POLICIES", "place", "is_pim_capable"]

#: Workload names the PIM sketch generator understands — the ops the
#: default policy sends to the PIM target.  Element-wise ``va``/``geva``
#: are sketchable too but stay host-side by default (inter-op glue);
#: override per node to push a residual add onto the device.
PIM_OP_NAMES = frozenset({"mtv", "gemv", "mmtv", "ttv"})

#: ``"upmem"`` is an alias for ``"default"`` (matvecs on the PIM side),
#: so experiment configs read as the placement they produce.
PLACEMENT_POLICIES = ("default", "upmem", "cpu", "mixed")


def is_pim_capable(node: Node, pim_target: Target) -> bool:
    """Whether ``pim_target`` can compile the node's workload (glue ops
    carry no PIM sketch and must stay on a functional host backend)."""
    return pim_target.supports(node.workload)


def place(
    graph: ModelGraph,
    policy: str = "default",
    pim: Union[str, Target] = "upmem",
    host: Union[str, Target] = "cpu",
) -> Dict[str, Target]:
    """Assign a Target to every node; returns ``{node name: Target}``.

    ``pim``/``host`` are resolved once, so every assigned node shares
    one Target instance per side (one pool identity, one config).
    """
    if policy not in PLACEMENT_POLICIES:
        raise GraphError(
            f"unknown placement policy {policy!r};"
            f" choose from {PLACEMENT_POLICIES}"
        )
    if policy == "upmem":
        policy = "default"
    graph.validate()
    pim_target = get_target(pim)
    host_target = get_target(host)
    placement: Dict[str, Target] = {}
    for node in graph.nodes:
        placement[node.name] = _place_node(
            node, policy, pim_target, host_target
        )
    return placement


def _place_node(
    node: Node, policy: str, pim_target: Target, host_target: Target
) -> Target:
    if node.target is not None:
        target = get_target(node.target)
        _check_capable(node, target)
        return target
    wants_pim = (
        node.workload.name in PIM_OP_NAMES
        and "glue" not in node.tags
        and (policy == "default" or (policy == "mixed" and "attn" in node.tags))
    )
    if wants_pim and is_pim_capable(node, pim_target):
        return pim_target
    _check_capable(node, host_target)
    return host_target


def _check_capable(node: Node, target: Target) -> None:
    if not target.supports(node.workload):
        raise GraphError(
            f"node {node.name!r} ({node.workload.name}) cannot compile"
            f" for target {target.kind!r}"
        )
