"""GraphExecutable: a compiled model graph with an end-to-end cost model.

Every node compiles through the serving layer's
:class:`~repro.serve.pool.ExecutablePool` (so per-head operators that
share one program compile once, and ``tuned=True`` pools warm-start
node parameters from a persistent tuning database).  Execution walks the
graph's topological levels — nodes of one level are independent and fan
out across a thread pool — and is bit-for-bit identical to calling each
node's ``Executable.run`` by hand at any worker count.

The latency model mirrors the serving timing model (§5.4), extended with
placement boundaries:

* **compute** (launch + kernel + host reduce) is charged per node from
  the node's own target profile;
* **dynamic H2D** is charged only for inputs *crossing* onto the device
  — produced by a host-placed node or arriving as a non-constant
  external input; a PIM-resident producer hands off in MRAM for free;
* **D2H** is charged only when the node's output *leaves* the device
  (a host-placed consumer, or a graph output);
* **weight staging** (the constant-input share of H2D — weights, the KV
  cache) is charged once per pool load, not per run: the paper's
  "constant tensors ... transferred once before kernel launches".

The aggregate is additive over the deterministic topological order — a
serial device schedule, matching how the server occupies one simulated
machine per flush.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..target import Executable, Executor, Target, get_target
from ..upmem.system import Latency
from .ir import ModelGraph, Node
from .placement import place

__all__ = [
    "NodeCost",
    "GraphProfile",
    "GraphExecutable",
    "compile_graph",
    "PIM_SUBSTRATE_KINDS",
]

#: Target kinds whose executables run on the (simulated) PIM machine —
#: data they produce stays device-resident until a host-placed consumer
#: or a graph output forces it back over the bus.
PIM_SUBSTRATE_KINDS = frozenset({"upmem", "prim", "simplepim"})


@dataclass(frozen=True)
class NodeCost:
    """One node's share of the end-to-end latency (seconds)."""

    node: str
    op: str
    target: str
    compute_s: float
    h2d_s: float
    d2h_s: float
    staging_s: float
    #: Whether any input crossed host->device / the output device->host.
    crossing_in: bool
    crossing_out: bool

    @property
    def total_s(self) -> float:
        """Recurring per-run cost (staging is paid once per load)."""
        return self.compute_s + self.h2d_s + self.d2h_s

    def to_dict(self) -> Dict:
        return {
            "node": self.node,
            "op": self.op,
            "target": self.target,
            "compute_ms": self.compute_s * 1e3,
            "h2d_ms": self.h2d_s * 1e3,
            "d2h_ms": self.d2h_s * 1e3,
            "staging_ms": self.staging_s * 1e3,
            "total_ms": self.total_s * 1e3,
            "crossing_in": self.crossing_in,
            "crossing_out": self.crossing_out,
        }


@dataclass
class GraphProfile:
    """End-to-end breakdown: per-node costs plus the aggregate."""

    nodes: List[NodeCost] = field(default_factory=list)
    #: Aggregate breakdown; ``h2d`` includes the one-time staging share
    #: so ``latency.total`` is the first-run end-to-end time (the serve
    #: model splits the constant share back out via the graph's
    #: ``const_inputs`` fraction).
    latency: Latency = field(default_factory=Latency)
    #: One-time constant-input staging total (weights, KV cache).
    staging_s: float = 0.0

    @property
    def total(self) -> float:
        return self.latency.total

    @property
    def steady_state_s(self) -> float:
        """Per-run latency once weights are staged."""
        return self.latency.total - self.staging_s


class GraphExecutable(Executable):
    """A model graph compiled node-by-node for a placement."""

    def __init__(
        self,
        graph: ModelGraph,
        placement: Dict[str, Target],
        target: Any = "upmem",
        pool: Optional[Any] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(get_target(target), workload=graph, params=None)
        graph.validate()
        missing = [n.name for n in graph.nodes if n.name not in placement]
        if missing:
            raise ValueError(f"placement misses nodes {missing}")
        self.graph = graph
        self.placement = placement
        self.max_workers = max_workers
        if pool is None:
            from ..serve.pool import ExecutablePool

            pool = ExecutablePool(capacity=max(8, len(graph.nodes)))
        self.pool = pool
        self._order = graph.topological_order()
        self._levels = graph.levels()
        #: node name -> (Executable, freshly loaded by this compile).
        self._exes: Dict[str, Tuple[Executable, bool]] = {}
        for node in self._order:
            exe, loaded = pool.get(
                node.workload, placement[node.name], node.params
            )
            self._exes[node.name] = (exe, loaded)
        self._profile: Optional[GraphProfile] = None
        self._plan = None

    # -- introspection -------------------------------------------------------
    def node_executable(self, name: str) -> Executable:
        return self._exes[name][0]

    @property
    def loaded_program_count(self) -> int:
        """Programs this compile actually loaded (pool misses) rather
        than found resident.  A decode loop watches this to prove
        structure sharing: the first capacity epoch loads everything,
        later epochs load only capacity-dependent attention programs,
        and steps inside an epoch build no executable at all."""
        return sum(1 for _, loaded in self._exes.values() if loaded)

    def pool_keys(self) -> set:
        """Residency keys of every (node, target, params) program this
        graph binds — what a long-lived loop pins in the pool."""
        from ..serve.pool import ExecutablePool

        return {
            ExecutablePool.key_for(
                node.workload, self.placement[node.name], node.params
            )
            for node in self._order
        }

    @property
    def memory_plan(self):
        """Linear-scan intermediate-buffer plan (computed lazily)."""
        if self._plan is None:
            from .memory import plan_memory

            self._plan = plan_memory(self.graph)
        return self._plan

    # -- execution -----------------------------------------------------------
    def run(
        self, inputs: Optional[Dict[str, np.ndarray]] = None, **named
    ) -> List[np.ndarray]:
        """Execute the DAG; returns the graph outputs in declaration
        order.  Independent nodes of one topological level fan out
        across a thread pool; each node executes exactly as a lone
        ``Executable.run`` call would, so results are bit-for-bit
        identical at any ``max_workers``."""
        env = self.run_tensors(self._named_inputs(inputs, named))
        return [env[name] for name in self.graph.output_names]

    def run_tensors(
        self, inputs: Dict[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Like :meth:`run`, returning ``{output name: array}``."""
        missing = [n for n in self.graph.input_names if n not in inputs]
        if missing:
            raise KeyError(
                f"graph {self.graph.name!r} missing inputs {missing}"
            )
        env: Dict[str, np.ndarray] = dict(inputs)

        def run_node(node: Node) -> np.ndarray:
            exe, _ = self._exes[node.name]
            feed = {
                wl_name: env[graph_name]
                for wl_name, graph_name, _ in node.input_bindings()
            }
            (out,) = exe.run(feed)
            return out

        # One persistent pool per run (not per level): a decode step has
        # several multi-node levels, and serving calls run() per request.
        with Executor(self.max_workers, persistent=True) as executor:
            for level in self._levels:
                outs = executor.map(run_node, level)
                for node, out in zip(level, outs):
                    env[node.output] = out
        return {name: env[name] for name in self.graph.output_names}

    # -- performance ---------------------------------------------------------
    def profile(self) -> GraphProfile:
        if self._profile is None:
            self._profile = self._build_profile()
        return self._profile

    def trace(
        self,
        tracer: Optional[Any] = None,
        track: str = "graph",
        include_staging: bool = True,
        name: Optional[str] = None,
    ) -> None:
        """Replay the profiled cost breakdown into a tracer as spans.

        One wrapping span for the whole graph, one child span per node
        in topological order, with H2D / compute / D2H sub-spans — the
        virtual-clock timeline of a single run.  Spans are emitted from
        the calling thread in deterministic topological order (never
        from the execution fan-out), so traced output is identical at
        any ``max_workers``.  Uses the ambient tracer when ``tracer`` is
        not given; a no-op when tracing is disabled.
        """
        from ..obs import current_tracer

        tracer = tracer if tracer is not None else current_tracer()
        if not tracer.enabled:
            return
        profile = self.profile()
        with tracer.span(
            name or f"graph {self.graph.name}",
            track=track,
            cat="graph",
            args={
                "nodes": len(profile.nodes),
                "total_ms": profile.total * 1e3,
                "staging_ms": profile.staging_s * 1e3,
            },
        ):
            for cost in profile.nodes:
                with tracer.span(
                    cost.node,
                    track=track,
                    cat="graph",
                    args={"op": cost.op, "target": cost.target},
                ):
                    if include_staging and cost.staging_s > 0:
                        tracer.timed_span(
                            "staging", track=track, cat="graph",
                            dur_s=cost.staging_s,
                        )
                    if cost.h2d_s > 0:
                        tracer.timed_span(
                            "h2d", track=track, cat="graph", dur_s=cost.h2d_s
                        )
                    tracer.timed_span(
                        "compute", track=track, cat="graph",
                        dur_s=cost.compute_s,
                    )
                    if cost.d2h_s > 0:
                        tracer.timed_span(
                            "d2h", track=track, cat="graph", dur_s=cost.d2h_s
                        )

    @property
    def latency(self) -> float:
        """First-run end-to-end seconds (includes weight staging; see
        :attr:`GraphProfile.steady_state_s` for the warmed number)."""
        return self.profile().total

    def _build_profile(self) -> GraphProfile:
        graph_outputs = set(self.graph.output_names)
        costs: List[NodeCost] = []
        agg = dict(h2d=0.0, kernel=0.0, d2h=0.0, host=0.0, launch=0.0)
        staging_total = 0.0
        # Staging is charged once per distinct const graph tensor (heads
        # share one compiled program but stage separate KV caches).  A
        # graph compiled entirely from a warm pool staged nothing: its
        # weights are already device-resident.
        fresh = any(loaded for _, loaded in self._exes.values())
        staged_tensors: set = set()
        for node in self._order:
            exe, loaded = self._exes[node.name]
            kind = self.placement[node.name].kind
            on_pim = kind in PIM_SUBSTRATE_KINDS
            lat = self._node_latency(exe)
            if not on_pim:
                # Host backends (rooflines) model their memory traffic
                # inside the compute number; boundary transfers are
                # charged on the PIM side of each edge.
                cost = NodeCost(
                    node=node.name,
                    op=node.workload.name,
                    target=kind,
                    compute_s=lat.total,
                    h2d_s=0.0,
                    d2h_s=0.0,
                    staging_s=0.0,
                    crossing_in=False,
                    crossing_out=False,
                )
                agg["kernel"] += lat.kernel
                agg["launch"] += lat.launch
                agg["host"] += lat.host + lat.h2d + lat.d2h
            else:
                crossing, const_bytes, total_in, const_tensors = (
                    self._input_bytes(node)
                )
                per_byte = lat.h2d / total_in if total_in else 0.0
                h2d = crossing * per_byte
                staging = 0.0
                if fresh:
                    for graph_name, nbytes in const_tensors:
                        if graph_name not in staged_tensors:
                            staged_tensors.add(graph_name)
                            staging += nbytes * per_byte
                leaves = node.output in graph_outputs or any(
                    self.placement[c.name].kind not in PIM_SUBSTRATE_KINDS
                    for c in self.graph.consumers(node.output)
                )
                d2h = lat.d2h if leaves else 0.0
                cost = NodeCost(
                    node=node.name,
                    op=node.workload.name,
                    target=kind,
                    compute_s=lat.launch + lat.kernel + lat.host,
                    h2d_s=h2d,
                    d2h_s=d2h,
                    staging_s=staging,
                    crossing_in=crossing > 0,
                    crossing_out=leaves,
                )
                agg["kernel"] += lat.kernel
                agg["launch"] += lat.launch
                agg["host"] += lat.host
                agg["h2d"] += h2d + staging
                agg["d2h"] += d2h
                staging_total += staging
            costs.append(cost)
        return GraphProfile(
            nodes=costs, latency=Latency(**agg), staging_s=staging_total
        )

    def _input_bytes(self, node: Node):
        """Input-byte breakdown of one PIM-placed node: (bytes crossing
        host->device, const bytes, total input bytes, [(const graph
        tensor, nbytes), ...]).

        A tensor is staged-once only when *both* sides agree it is
        resident: the workload keeps that input slot on the device
        (``workload.const_inputs``) *and* the graph declares the tensor
        constant (``add_input(const=True)``).  A dynamic graph input
        bound to a const slot carries fresh data every run — that is
        recurring H2D, not staging — and an intermediate bound to a
        const slot follows the ordinary producer-placement rules.
        """
        crossing = const_bytes = total = 0
        const_tensors: List[Tuple[str, int]] = []
        const_names = node.workload.const_inputs or frozenset()
        graph_const = self.graph.const_inputs
        for wl_name, graph_name, _ in node.input_bindings():
            nbytes = self.graph.tensor_nbytes(graph_name)
            total += nbytes
            if wl_name in const_names and graph_name in graph_const:
                const_bytes += nbytes
                const_tensors.append((graph_name, nbytes))
                continue
            producer = self.graph.producer(graph_name)
            if producer is None:
                # Dynamic external input: arrives from the host.
                crossing += nbytes
            elif (
                self.placement[producer.name].kind not in PIM_SUBSTRATE_KINDS
            ):
                crossing += nbytes
        return crossing, const_bytes, total, const_tensors

    @staticmethod
    def _node_latency(exe: Executable) -> Latency:
        """A node executable's breakdown, tolerant of latency-only
        targets (everything lands in ``kernel``)."""
        try:
            lat = getattr(exe.profile(), "latency", None)
        except Exception:
            lat = None
        if isinstance(lat, Latency):
            return lat
        if lat is not None and hasattr(lat, "total"):
            return Latency(
                h2d=getattr(lat, "h2d", 0.0),
                kernel=getattr(lat, "kernel", 0.0),
                d2h=getattr(lat, "d2h", 0.0),
                host=getattr(lat, "host", 0.0),
                launch=getattr(lat, "launch", 0.0),
            )
        return Latency(kernel=exe.latency)


def compile_graph(
    graph: ModelGraph,
    target: Union[str, Target] = "upmem",
    host_target: Union[str, Target] = "cpu",
    placement: Optional[Dict[str, Target]] = None,
    policy: str = "default",
    pool: Optional[Any] = None,
    opt_level: str = "O3",
    tuned: bool = False,
    db: Optional[Any] = None,
    tune_trials: int = 64,
    max_workers: Optional[int] = None,
) -> GraphExecutable:
    """Compile a model graph: place every node, then compile each
    through an :class:`~repro.serve.pool.ExecutablePool`.

    ``target`` is the PIM side of the placement (``repro.compile``
    routes its ``target=`` here); pass an explicit ``placement`` dict to
    bypass the policy entirely.  ``tuned``/``db``/``tune_trials`` build
    the pool in tuning-DB warm-start mode for nodes without pinned
    params.
    """
    if placement is None:
        placement = place(graph, policy=policy, pim=target, host=host_target)
    if pool is None:
        from ..serve.pool import ExecutablePool

        pool = ExecutablePool(
            capacity=max(8, len(graph.nodes)),
            opt_level=opt_level,
            tuned=tuned,
            db=db,
            tune_trials=tune_trials,
        )
    return GraphExecutable(
        graph,
        placement,
        target=target,
        pool=pool,
        max_workers=max_workers,
    )
