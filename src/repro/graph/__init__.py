"""``repro.graph`` — end-to-end model graphs over the compile stack.

The layer above per-kernel compilation: a :class:`ModelGraph` is a DAG
of workloads over named tensors, a placement pass assigns each node a
backend (MMTV/MTV on the PIM target, element-wise glue on the host —
overridable per node), a linear-scan memory planner reuses dead
intermediate buffers, and a :class:`GraphExecutable` compiles every node
through the serving :class:`~repro.serve.pool.ExecutablePool` and runs
whole decode steps bit-for-bit equal to per-op execution, with an
end-to-end latency model that pays host<->DPU transfers only on
placement boundaries and weight staging once per load.

Quick tour::

    from repro.graph import gptj_decoder_graph, compile_graph, plan_memory

    graph = gptj_decoder_graph(tokens=16)
    exe = compile_graph(graph, target="upmem")   # or repro.compile(graph)
    outs = exe.run(graph.random_inputs(seed=0))
    for cost in exe.profile().nodes:
        print(cost.node, cost.target, cost.total_s)
    print(plan_memory(graph).reuse_ratio)
"""

from .builder import (
    GPTJ_SIM,
    gptj_decoder_graph,
    gptj_model_graph,
    small_grid_params,
)
from .executable import (
    GraphExecutable,
    GraphProfile,
    NodeCost,
    compile_graph,
)
from .ir import GraphError, ModelGraph, Node
from .memory import MemoryPlan, SlotAssignment, arena_stats, plan_memory
from .placement import PIM_OP_NAMES, PLACEMENT_POLICIES, place

__all__ = [
    "GraphError",
    "ModelGraph",
    "Node",
    "GraphExecutable",
    "GraphProfile",
    "NodeCost",
    "compile_graph",
    "MemoryPlan",
    "SlotAssignment",
    "arena_stats",
    "plan_memory",
    "place",
    "PIM_OP_NAMES",
    "PLACEMENT_POLICIES",
    "GPTJ_SIM",
    "gptj_decoder_graph",
    "gptj_model_graph",
    "small_grid_params",
]
