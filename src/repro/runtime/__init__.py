"""Runtime: build() and the executable Module wrapper."""

from .module import Module, build

__all__ = ["Module", "build"]
