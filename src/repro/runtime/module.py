"""Build API: schedule → optimized module with run()/profile().

The user-facing entry point is ``repro.compile(sch, target="upmem")``,
which wraps the :class:`Module` this produces in a target
:class:`~repro.target.Executable`; ``repro.build`` remains as a
deprecation shim.  Internal code (targets, tests) calls :func:`build`
here directly::

    mod = build(sch, name="mtv")
    out, = mod.run(A=a, B=b)          # functional execution
    prof = mod.profile()              # simulated latency breakdown
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..lowering import LoweredModule, LowerOptions
from ..schedule import Schedule
from ..upmem import FunctionalExecutor, UpmemConfig
from ..upmem.system import PerformanceModel, ProfileResult

__all__ = ["Module", "build"]


class Module:
    """A compiled tensor program targeting the simulated UPMEM system."""

    def __init__(
        self,
        lowered: LoweredModule,
        config: Optional[UpmemConfig] = None,
        sim_mode: Optional[str] = None,
    ) -> None:
        self.lowered = lowered
        self.config = config
        #: ``None`` follows the ``REPRO_SIM_MODE`` env knob per call;
        #: "vector" / "scalar" / "verify" pins this module's executor.
        self.sim_mode = sim_mode
        self._executor = FunctionalExecutor(lowered, mode=sim_mode)
        self._profile_cache: Dict[Optional[UpmemConfig], ProfileResult] = {}

    @property
    def name(self) -> str:
        return self.lowered.name

    @property
    def executor(self) -> FunctionalExecutor:
        """The functional executor (exposes phased grid execution for
        batch sharding — see :meth:`FunctionalExecutor.run_points`)."""
        return self._executor

    def run(self, inputs: Optional[Dict[str, np.ndarray]] = None, **named):
        """Execute functionally; returns the list of output arrays."""
        data = dict(inputs or {})
        data.update(named)
        return self._executor.run(data)

    def profile(self) -> ProfileResult:
        """Simulated latency breakdown.

        Cached per hardware config — the model is deterministic, but
        callers may reassign ``self.config`` (e.g. to re-profile on a
        smaller machine), so the cache key is the config in effect at
        call time, not the one the module was built with.
        """
        cached = self._profile_cache.get(self.config)
        if cached is None:
            cached = PerformanceModel(self.config).profile(self.lowered)
            self._profile_cache[self.config] = cached
        return cached

    @property
    def latency(self) -> float:
        """Total simulated latency in seconds."""
        return self.profile().latency.total

    def script(self) -> str:
        """Human-readable kernel TIR."""
        from ..tir import stmt_to_str

        return stmt_to_str(self.lowered.kernel)

    def source(self) -> str:
        """UPMEM-C rendering of the kernel."""
        from ..upmem.emitter import emit_kernel_c

        return emit_kernel_c(self.lowered)


def build(
    schedule: Schedule,
    name: Optional[str] = None,
    options: Optional[LowerOptions] = None,
    config: Optional[UpmemConfig] = None,
    ctx: Optional["PassContext"] = None,
) -> Module:
    """Compile a schedule into an executable module via the ``build``
    pipeline (lowering + the §5.3 passes).

    The PIM-aware optimization level comes from ``options.optimize``
    (default ``O3`` — all of §5.3).  Pass an explicit
    :class:`repro.pipeline.PassContext` as ``ctx`` to attach instruments
    or collect per-pass timing/IR dumps; explicit ``name``/``options``/
    ``config`` arguments override the context's values, otherwise the
    context's own settings are respected.  Overrides are written into
    ``ctx`` (they stay in effect if the same context is reused for a
    later build), matching how timings accumulate on a reused context.
    """
    from ..pipeline import OPT_LEVELS, PassContext, get_pipeline

    if ctx is None:
        options = options or LowerOptions()
        ctx = PassContext(
            config=config,
            opt_level=options.optimize,
            options=options,
            module_name=name or "main",
        )
    else:
        if options is not None:
            if options.optimize not in OPT_LEVELS:
                raise ValueError(f"unknown optimization level {options.optimize!r}")
            ctx.options = options
            ctx.opt_level = options.optimize
        if name is not None:
            ctx.module_name = name
        if config is not None:
            ctx.config = config
    lowered = get_pipeline("build").run(schedule, ctx)
    return Module(lowered, ctx.config)
