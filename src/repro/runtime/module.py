"""Build API: schedule → optimized module with run()/profile().

This is the user-facing entry point::

    mod = repro.build(sch, name="mtv")
    out, = mod.run(A=a, B=b)          # functional execution
    prof = mod.profile()              # simulated latency breakdown
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..lowering import LoweredModule, LowerOptions, lower
from ..schedule import Schedule
from ..upmem import FunctionalExecutor, UpmemConfig
from ..upmem.system import PerformanceModel, ProfileResult

__all__ = ["Module", "build"]


class Module:
    """A compiled tensor program targeting the simulated UPMEM system."""

    def __init__(
        self,
        lowered: LoweredModule,
        config: Optional[UpmemConfig] = None,
    ) -> None:
        self.lowered = lowered
        self.config = config
        self._model = PerformanceModel(config)
        self._executor = FunctionalExecutor(lowered)
        self._profile_cache: Optional[ProfileResult] = None

    @property
    def name(self) -> str:
        return self.lowered.name

    def run(self, inputs: Optional[Dict[str, np.ndarray]] = None, **named):
        """Execute functionally; returns the list of output arrays."""
        data = dict(inputs or {})
        data.update(named)
        return self._executor.run(data)

    def profile(self) -> ProfileResult:
        """Simulated latency breakdown (cached — the model is deterministic)."""
        if self._profile_cache is None:
            self._profile_cache = self._model.profile(self.lowered)
        return self._profile_cache

    @property
    def latency(self) -> float:
        """Total simulated latency in seconds."""
        return self.profile().latency.total

    def script(self) -> str:
        """Human-readable kernel TIR."""
        from ..tir import stmt_to_str

        return stmt_to_str(self.lowered.kernel)


def build(
    schedule: Schedule,
    name: str = "main",
    options: Optional[LowerOptions] = None,
    config: Optional[UpmemConfig] = None,
) -> Module:
    """Lower, optimize and wrap a schedule into an executable module.

    The PIM-aware optimization level comes from ``options.optimize``
    (default ``O3`` — all of §5.3).
    """
    options = options or LowerOptions()
    lowered = lower(schedule, name=name, options=options)
    from ..optim import optimize_module

    lowered = optimize_module(lowered, options.optimize, config)
    return Module(lowered, config)
