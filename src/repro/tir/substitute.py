"""Variable substitution over expressions and statements."""

from __future__ import annotations

from typing import Dict, Optional

from . import expr as E
from . import stmt as S
from .visitor import ExprMutator, StmtMutator

__all__ = ["substitute", "substitute_stmt"]


class _Substituter(StmtMutator):
    def __init__(self, mapping: Dict[E.Var, E.PrimExpr]) -> None:
        self.mapping = mapping

    def visit_Var(self, node: E.Var) -> Optional[E.PrimExpr]:
        return self.mapping.get(node, node)


def substitute(expr: E.PrimExpr, mapping: Dict[E.Var, E.PrimExpr]) -> E.PrimExpr:
    """Replace variables in ``expr`` according to ``mapping``."""
    if not mapping:
        return expr
    return _Substituter(mapping).visit(expr)


def substitute_stmt(stmt: S.Stmt, mapping: Dict[E.Var, E.PrimExpr]) -> S.Stmt:
    """Replace variables in ``stmt`` according to ``mapping``."""
    if not mapping:
        return stmt
    result = _Substituter(mapping).visit_stmt(stmt)
    assert result is not None
    return result
