"""Expression simplification: constant folding plus affine normalization.

The simplifier keeps lowered loop extents and boundary conditions in a
canonical, mostly-affine form so that downstream analyses (interval
analysis, loop-bound tightening, the timing walker) can reason about them.
It is intentionally a rewriting simplifier, not a full solver.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import expr as E
from .visitor import ExprMutator

__all__ = ["simplify", "const_int", "is_const_int", "affine_coeffs", "prove_lt"]


def const_int(expr: E.PrimExpr) -> Optional[int]:
    """Return the integer value of ``expr`` if it is an integer immediate."""
    if isinstance(expr, E.IntImm):
        return expr.value
    return None


def is_const_int(expr: E.PrimExpr, value: Optional[int] = None) -> bool:
    """Check whether ``expr`` is an integer immediate (optionally equal)."""
    v = const_int(expr)
    if v is None:
        return False
    return value is None or v == value


def affine_coeffs(expr: E.PrimExpr) -> Optional[Tuple[Dict[E.Var, int], int]]:
    """Decompose an integer expression as ``sum(c_i * v_i) + c0``.

    Returns ``(coeffs, constant)`` or ``None`` if the expression is not
    affine in its variables (e.g. contains ``//``, ``%``, ``min`` or loads).
    """
    coeffs: Dict[E.Var, int] = {}

    def fail() -> None:
        raise _NotAffine

    def walk(node: E.PrimExpr, scale: int) -> int:
        if isinstance(node, E.IntImm):
            return node.value * scale
        if isinstance(node, E.Var):
            coeffs[node] = coeffs.get(node, 0) + scale
            return 0
        if isinstance(node, E.Add):
            return walk(node.a, scale) + walk(node.b, scale)
        if isinstance(node, E.Sub):
            return walk(node.a, scale) + walk(node.b, -scale)
        if isinstance(node, E.Mul):
            ca = const_int(node.a)
            cb = const_int(node.b)
            if cb is not None:
                return walk(node.a, scale * cb)
            if ca is not None:
                return walk(node.b, scale * ca)
            fail()
        fail()
        return 0  # pragma: no cover

    try:
        constant = walk(expr, 1)
    except _NotAffine:
        return None
    return {v: c for v, c in coeffs.items() if c != 0}, constant


class _NotAffine(Exception):
    pass


class _Simplifier(ExprMutator):
    """Bottom-up rewriting simplifier."""

    def generic_visit(self, node: E.PrimExpr) -> E.PrimExpr:
        node = super().generic_visit(node)
        return _rewrite(node)


def _int2(node: E.BinaryOp) -> Optional[Tuple[int, int]]:
    a = const_int(node.a)
    b = const_int(node.b)
    if a is None or b is None:
        if (
            isinstance(node.a, E.FloatImm)
            and isinstance(node.b, E.FloatImm)
        ):
            return None
        return None
    return a, b


def _float2(node: E.BinaryOp) -> Optional[Tuple[float, float]]:
    if isinstance(node.a, E.FloatImm) and isinstance(node.b, E.FloatImm):
        return node.a.value, node.b.value
    return None


def _same_affine(a: E.PrimExpr, b: E.PrimExpr) -> bool:
    """Structural equality via affine decomposition of ``a - b == 0``."""
    dec = affine_coeffs(E.Sub(a, b))
    return dec is not None and not dec[0] and dec[1] == 0


def _rewrite(node: E.PrimExpr) -> E.PrimExpr:
    # --- constant folding -----------------------------------------------
    if isinstance(node, E.BinaryOp):
        ints = _int2(node)
        if ints is not None:
            a, b = ints
            folded = _fold_int(type(node), a, b)
            if folded is not None:
                return folded
        floats = _float2(node)
        if floats is not None:
            a, b = floats
            folded = _fold_float(type(node), a, b)
            if folded is not None:
                return folded

    # --- affine canonicalization ------------------------------------------
    # Rebuild +/-/* chains of integer terms in a canonical sum-of-products
    # form so that syntactically different but equal index expressions
    # (e.g. ``io*16 + ii - io*16``) collapse.
    if (
        isinstance(node, (E.Add, E.Sub, E.Mul))
        and node.dtype.startswith("int")
        and not _contains_opaque(node)
    ):
        dec = affine_coeffs(node)
        if dec is not None:
            rebuilt = _affine_rebuild(*dec)
            if _expr_size(rebuilt) < _expr_size(node):
                return rebuilt

    # --- algebraic identities --------------------------------------------
    if isinstance(node, E.Add):
        if is_const_int(node.a, 0):
            return node.b
        if is_const_int(node.b, 0):
            return node.a
    elif isinstance(node, E.Sub):
        if is_const_int(node.b, 0):
            return node.a
        if _same_affine_safe(node.a, node.b):
            return E.IntImm(0)
    elif isinstance(node, E.Mul):
        if is_const_int(node.a, 0) or is_const_int(node.b, 0):
            return E.IntImm(0)
        if is_const_int(node.a, 1):
            return node.b
        if is_const_int(node.b, 1):
            return node.a
    elif isinstance(node, E.FloorDiv):
        if is_const_int(node.b, 1):
            return node.a
        if is_const_int(node.a, 0):
            return E.IntImm(0)
    elif isinstance(node, E.FloorMod):
        if is_const_int(node.b, 1):
            return E.IntImm(0)
        if is_const_int(node.a, 0):
            return E.IntImm(0)
    elif isinstance(node, (E.Min, E.Max)):
        if _same_affine_safe(node.a, node.b):
            return node.a
    elif isinstance(node, E.And):
        for x, y in ((node.a, node.b), (node.b, node.a)):
            if is_const_int(x, 1):
                return y
            if is_const_int(x, 0):
                return E.IntImm(0, "bool")
    elif isinstance(node, E.Or):
        for x, y in ((node.a, node.b), (node.b, node.a)):
            if is_const_int(x, 0):
                return y
            if is_const_int(x, 1):
                return E.IntImm(1, "bool")
    elif isinstance(node, E.Not):
        v = const_int(node.a)
        if v is not None:
            return E.IntImm(0 if v else 1, "bool")
        if isinstance(node.a, E.Not):
            return node.a.a
    elif isinstance(node, E.Select):
        v = const_int(node.cond)
        if v is not None:
            return node.true_value if v else node.false_value
    elif isinstance(node, E.Cast):
        if node.value.dtype == node.dtype:
            return node.value
        inner = node.value
        if isinstance(inner, E.IntImm):
            if node.dtype.startswith("float"):
                return E.FloatImm(float(inner.value), node.dtype)
            return E.IntImm(inner.value, node.dtype)

    # comparisons between affine-equal operands
    if isinstance(node, (E.LE, E.GE, E.EQ)) and _same_affine_safe(node.a, node.b):
        return E.IntImm(1, "bool")
    if isinstance(node, (E.LT, E.GT, E.NE)) and _same_affine_safe(node.a, node.b):
        return E.IntImm(0, "bool")
    return node


def _contains_opaque(node: E.PrimExpr) -> bool:
    """Whether the tree contains nodes affine_coeffs cannot decompose."""
    from .visitor import post_order_exprs

    for sub in post_order_exprs(node):
        if not isinstance(sub, (E.Add, E.Sub, E.Mul, E.Var, E.IntImm)):
            return True
    return False


def _affine_rebuild(coeffs, constant: int) -> E.PrimExpr:
    """Canonical ``c1*v1 + ... + cn*vn + c0`` (vars ordered by name)."""
    expr: Optional[E.PrimExpr] = None
    for var in sorted(coeffs, key=lambda v: v.name):
        c = coeffs[var]
        term = var if c == 1 else E.Mul(var, E.IntImm(c))
        expr = term if expr is None else E.Add(expr, term)
    if expr is None:
        return E.IntImm(constant)
    if constant:
        expr = E.Add(expr, E.IntImm(constant))
    return expr


def _expr_size(node: E.PrimExpr) -> int:
    from .visitor import post_order_exprs

    return sum(1 for _ in post_order_exprs(node))


def _same_affine_safe(a: E.PrimExpr, b: E.PrimExpr) -> bool:
    if a.dtype == "float32" or b.dtype == "float32":
        return False
    try:
        return _same_affine(a, b)
    except Exception:  # pragma: no cover - defensive
        return False


def _fold_int(op, a: int, b: int) -> Optional[E.PrimExpr]:
    if op is E.Add:
        return E.IntImm(a + b)
    if op is E.Sub:
        return E.IntImm(a - b)
    if op is E.Mul:
        return E.IntImm(a * b)
    if op is E.FloorDiv:
        return E.IntImm(a // b) if b != 0 else None
    if op is E.FloorMod:
        return E.IntImm(a % b) if b != 0 else None
    if op is E.Min:
        return E.IntImm(min(a, b))
    if op is E.Max:
        return E.IntImm(max(a, b))
    if op is E.LT:
        return E.IntImm(1 if a < b else 0, "bool")
    if op is E.LE:
        return E.IntImm(1 if a <= b else 0, "bool")
    if op is E.GT:
        return E.IntImm(1 if a > b else 0, "bool")
    if op is E.GE:
        return E.IntImm(1 if a >= b else 0, "bool")
    if op is E.EQ:
        return E.IntImm(1 if a == b else 0, "bool")
    if op is E.NE:
        return E.IntImm(1 if a != b else 0, "bool")
    if op is E.And:
        return E.IntImm(1 if (a and b) else 0, "bool")
    if op is E.Or:
        return E.IntImm(1 if (a or b) else 0, "bool")
    return None


def _fold_float(op, a: float, b: float) -> Optional[E.PrimExpr]:
    if op is E.Add:
        return E.FloatImm(a + b)
    if op is E.Sub:
        return E.FloatImm(a - b)
    if op is E.Mul:
        return E.FloatImm(a * b)
    if op is E.Min:
        return E.FloatImm(min(a, b))
    if op is E.Max:
        return E.FloatImm(max(a, b))
    return None


_SIMPLIFIER = _Simplifier()


def simplify(expr: E.PrimExpr) -> E.PrimExpr:
    """Simplify ``expr`` (constant folding + affine identities)."""
    return _SIMPLIFIER.visit(expr)


def prove_lt(lhs: E.PrimExpr, rhs: E.PrimExpr, var_ranges) -> Optional[bool]:
    """Try to prove ``lhs < rhs`` given variable ranges.

    ``var_ranges`` maps :class:`Var` → ``(min, extent)``.  Returns ``True``
    (always), ``False`` (never) or ``None`` (depends on the iteration point).
    Uses interval arithmetic; see :mod:`repro.tir.interval`.
    """
    from .interval import Interval, eval_interval

    env = {v: Interval(lo, lo + ext - 1) for v, (lo, ext) in var_ranges.items()}
    diff = eval_interval(E.Sub(lhs, rhs), env)
    if diff is None:
        return None
    if diff.hi is not None and diff.hi < 0:
        return True
    if diff.lo is not None and diff.lo >= 0:
        return False
    return None
