"""Statement-level simplification: unit loops, constant branches, indices."""

from __future__ import annotations

from typing import Optional

from . import expr as E
from . import stmt as S
from .simplify import simplify
from .substitute import substitute_stmt
from .visitor import StmtMutator

__all__ = ["simplify_stmt"]


class _StmtSimplifier(StmtMutator):
    def visit(self, node: E.PrimExpr) -> E.PrimExpr:  # simplify all exprs
        return simplify(super().visit(node))

    def visit_For(self, node: S.For) -> Optional[S.Stmt]:
        body = self.visit_stmt(node.body)
        if body is None:
            return None
        extent = simplify(self.visit(node.extent))
        if isinstance(extent, E.IntImm):
            if extent.value <= 0:
                return None
            if extent.value == 1 and node.kind is not S.ForKind.THREAD_BINDING:
                inlined = substitute_stmt(body, {node.var: E.IntImm(0)})
                result = _StmtSimplifier().visit_stmt(inlined)
                return result
        return S.For(node.var, extent, body, node.kind, node.thread_tag)

    def visit_IfThenElse(self, node: S.IfThenElse) -> Optional[S.Stmt]:
        cond = simplify(self.visit(node.condition))
        then_case = self.visit_stmt(node.then_case)
        else_case = (
            self.visit_stmt(node.else_case) if node.else_case is not None else None
        )
        if isinstance(cond, E.IntImm):
            return then_case if cond.value else else_case
        if then_case is None and else_case is None:
            return None
        if then_case is None:
            return S.IfThenElse(simplify(E.Not(cond)), else_case)
        return S.IfThenElse(cond, then_case, else_case)


def simplify_stmt(stmt: S.Stmt) -> Optional[S.Stmt]:
    """Simplify a statement tree; returns ``None`` if it vanishes."""
    return _StmtSimplifier().visit_stmt(stmt)
