"""Expression nodes for the loop-based tensor IR.

The IR mirrors the subset of TVM's TIR that ATiM's lowering pipeline
produces: integer/float scalar expressions with affine index arithmetic,
comparisons, boolean connectives and buffer loads.  Nodes are immutable;
transformations build new trees (see :mod:`repro.tir.visitor`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "PrimExpr",
    "Var",
    "IntImm",
    "FloatImm",
    "BinaryOp",
    "Add",
    "Sub",
    "Mul",
    "FloorDiv",
    "FloorMod",
    "Min",
    "Max",
    "CmpOp",
    "LT",
    "LE",
    "GT",
    "GE",
    "EQ",
    "NE",
    "And",
    "Or",
    "Not",
    "Select",
    "BufferLoad",
    "Call",
    "Cast",
    "const",
    "as_expr",
    "all_of",
    "any_of",
]


def _result_dtype(a: "PrimExpr", b: "PrimExpr") -> str:
    """Widen the operand dtypes following a simple int < float lattice."""
    if a.dtype == b.dtype:
        return a.dtype
    if "float" in (a.dtype, b.dtype) or "float32" in (a.dtype, b.dtype):
        return "float32"
    return a.dtype if a.dtype != "int32" else b.dtype


class PrimExpr:
    """Base class of all scalar expressions.

    Every expression carries a ``dtype`` string (``"int32"``, ``"float32"``
    or ``"bool"``).  Python arithmetic operators are overloaded to build IR
    nodes, so index math reads naturally: ``i * 16 + j``.
    """

    __slots__ = ("dtype",)

    def __init__(self, dtype: str) -> None:
        self.dtype = dtype

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return Add(self, as_expr(other))

    def __radd__(self, other):
        return Add(as_expr(other), self)

    def __sub__(self, other):
        return Sub(self, as_expr(other))

    def __rsub__(self, other):
        return Sub(as_expr(other), self)

    def __mul__(self, other):
        return Mul(self, as_expr(other))

    def __rmul__(self, other):
        return Mul(as_expr(other), self)

    def __floordiv__(self, other):
        return FloorDiv(self, as_expr(other))

    def __rfloordiv__(self, other):
        return FloorDiv(as_expr(other), self)

    def __mod__(self, other):
        return FloorMod(self, as_expr(other))

    def __rmod__(self, other):
        return FloorMod(as_expr(other), self)

    def __neg__(self):
        return Sub(const(0, self.dtype), self)

    # -- comparisons (return IR nodes, not Python bools) -----------------
    def __lt__(self, other):
        return LT(self, as_expr(other))

    def __le__(self, other):
        return LE(self, as_expr(other))

    def __gt__(self, other):
        return GT(self, as_expr(other))

    def __ge__(self, other):
        return GE(self, as_expr(other))

    def equal(self, other) -> "EQ":
        """Build an equality comparison node (``==`` is kept for hashing)."""
        return EQ(self, as_expr(other))

    def not_equal(self, other) -> "NE":
        return NE(self, as_expr(other))

    # Identity-based equality/hash so nodes can live in dicts/sets.
    def __eq__(self, other):  # pragma: no cover - trivial
        return self is other

    def __hash__(self):  # pragma: no cover - trivial
        return id(self)

    def __repr__(self) -> str:
        from .printer import expr_to_str

        return expr_to_str(self)


class Var(PrimExpr):
    """A scalar variable, e.g. a loop iterator or a host parameter."""

    __slots__ = ("name",)

    def __init__(self, name: str, dtype: str = "int32") -> None:
        super().__init__(dtype)
        self.name = name


class IntImm(PrimExpr):
    """Integer immediate."""

    __slots__ = ("value",)

    def __init__(self, value: int, dtype: str = "int32") -> None:
        super().__init__(dtype)
        self.value = int(value)


class FloatImm(PrimExpr):
    """Floating-point immediate."""

    __slots__ = ("value",)

    def __init__(self, value: float, dtype: str = "float32") -> None:
        super().__init__(dtype)
        self.value = float(value)


class BinaryOp(PrimExpr):
    """Common base for binary arithmetic nodes."""

    __slots__ = ("a", "b")
    op_name = "?"

    def __init__(self, a, b, dtype: Optional[str] = None) -> None:
        a = as_expr(a)
        b = as_expr(b)
        super().__init__(dtype or _result_dtype(a, b))
        self.a = a
        self.b = b


class Add(BinaryOp):
    op_name = "+"


class Sub(BinaryOp):
    op_name = "-"


class Mul(BinaryOp):
    op_name = "*"


class FloorDiv(BinaryOp):
    op_name = "//"


class FloorMod(BinaryOp):
    op_name = "%"


class Min(BinaryOp):
    op_name = "min"


class Max(BinaryOp):
    op_name = "max"


class CmpOp(BinaryOp):
    """Common base for comparisons; result dtype is ``bool``."""

    def __init__(self, a, b) -> None:
        super().__init__(a, b, dtype="bool")


class LT(CmpOp):
    op_name = "<"


class LE(CmpOp):
    op_name = "<="


class GT(CmpOp):
    op_name = ">"


class GE(CmpOp):
    op_name = ">="


class EQ(CmpOp):
    op_name = "=="


class NE(CmpOp):
    op_name = "!="


class And(BinaryOp):
    op_name = "&&"

    def __init__(self, a, b) -> None:
        super().__init__(a, b, dtype="bool")


class Or(BinaryOp):
    op_name = "||"

    def __init__(self, a, b) -> None:
        super().__init__(a, b, dtype="bool")


class Not(PrimExpr):
    """Boolean negation."""

    __slots__ = ("a",)

    def __init__(self, a) -> None:
        super().__init__("bool")
        self.a = as_expr(a)


class Select(PrimExpr):
    """``cond ? true_value : false_value`` without short-circuiting."""

    __slots__ = ("cond", "true_value", "false_value")

    def __init__(self, cond, true_value, false_value) -> None:
        tv = as_expr(true_value)
        fv = as_expr(false_value)
        super().__init__(_result_dtype(tv, fv))
        self.cond = as_expr(cond)
        self.true_value = tv
        self.false_value = fv


class BufferLoad(PrimExpr):
    """Read ``buffer[indices...]``."""

    __slots__ = ("buffer", "indices")

    def __init__(self, buffer, indices: Sequence[PrimExpr]) -> None:
        super().__init__(buffer.dtype)
        self.buffer = buffer
        self.indices: Tuple[PrimExpr, ...] = tuple(as_expr(i) for i in indices)


class Call(PrimExpr):
    """Opaque intrinsic call, e.g. ``exp`` or a backend builtin."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Iterable, dtype: str = "float32") -> None:
        super().__init__(dtype)
        self.op = op
        self.args = tuple(as_expr(a) for a in args)


class Cast(PrimExpr):
    """Convert ``value`` to ``dtype``."""

    __slots__ = ("value",)

    def __init__(self, value, dtype: str) -> None:
        super().__init__(dtype)
        self.value = as_expr(value)


def const(value, dtype: str = "int32") -> PrimExpr:
    """Make an immediate of the requested dtype."""
    if dtype == "bool":
        return IntImm(1 if value else 0, "bool")
    if dtype.startswith("int") or dtype.startswith("uint"):
        return IntImm(int(value), dtype)
    return FloatImm(float(value), dtype)


def as_expr(value) -> PrimExpr:
    """Coerce a Python number (or pass through an expression) into IR."""
    if isinstance(value, PrimExpr):
        return value
    if isinstance(value, bool):
        return IntImm(1 if value else 0, "bool")
    if isinstance(value, int):
        return IntImm(value)
    if isinstance(value, float):
        return FloatImm(value)
    raise TypeError(f"cannot convert {value!r} to PrimExpr")


def all_of(conds: Sequence[PrimExpr]) -> Optional[PrimExpr]:
    """Conjoin a list of boolean expressions; ``None`` if the list is empty."""
    result: Optional[PrimExpr] = None
    for cond in conds:
        result = cond if result is None else And(result, cond)
    return result


def any_of(conds: Sequence[PrimExpr]) -> Optional[PrimExpr]:
    """Disjoin a list of boolean expressions; ``None`` if the list is empty."""
    result: Optional[PrimExpr] = None
    for cond in conds:
        result = cond if result is None else Or(result, cond)
    return result
