"""Generic visitors and mutators over TIR expressions and statements."""

from __future__ import annotations

from typing import Iterator, List, Optional

from . import expr as E
from . import stmt as S

__all__ = [
    "ExprVisitor",
    "ExprMutator",
    "StmtVisitor",
    "StmtMutator",
    "post_order_exprs",
    "collect_vars",
    "collect_loads",
    "iter_stmts",
]


class ExprVisitor:
    """Read-only traversal over expressions; override ``visit_*`` hooks."""

    def visit(self, node: E.PrimExpr) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        self.generic_visit(node)

    def generic_visit(self, node: E.PrimExpr) -> None:
        for child in expr_children(node):
            self.visit(child)


def expr_children(node: E.PrimExpr) -> List[E.PrimExpr]:
    """Direct sub-expressions of ``node``."""
    if isinstance(node, E.BinaryOp):
        return [node.a, node.b]
    if isinstance(node, E.Not):
        return [node.a]
    if isinstance(node, E.Select):
        return [node.cond, node.true_value, node.false_value]
    if isinstance(node, E.BufferLoad):
        return list(node.indices)
    if isinstance(node, E.Call):
        return list(node.args)
    if isinstance(node, E.Cast):
        return [node.value]
    return []


class ExprMutator:
    """Rebuilding traversal: ``visit`` returns a (possibly new) expression."""

    def visit(self, node: E.PrimExpr) -> E.PrimExpr:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            result = method(node)
            if result is not None:
                return result
        return self.generic_visit(node)

    def generic_visit(self, node: E.PrimExpr) -> E.PrimExpr:
        if isinstance(node, E.BinaryOp):
            a = self.visit(node.a)
            b = self.visit(node.b)
            if a is node.a and b is node.b:
                return node
            return type(node)(a, b)
        if isinstance(node, E.Not):
            a = self.visit(node.a)
            return node if a is node.a else E.Not(a)
        if isinstance(node, E.Select):
            c = self.visit(node.cond)
            t = self.visit(node.true_value)
            f = self.visit(node.false_value)
            if c is node.cond and t is node.true_value and f is node.false_value:
                return node
            return E.Select(c, t, f)
        if isinstance(node, E.BufferLoad):
            idx = [self.visit(i) for i in node.indices]
            if all(n is o for n, o in zip(idx, node.indices)):
                return node
            return E.BufferLoad(node.buffer, idx)
        if isinstance(node, E.Call):
            args = [self.visit(a) for a in node.args]
            if all(n is o for n, o in zip(args, node.args)):
                return node
            return E.Call(node.op, args, node.dtype)
        if isinstance(node, E.Cast):
            v = self.visit(node.value)
            return node if v is node.value else E.Cast(v, node.dtype)
        return node


class StmtVisitor(ExprVisitor):
    """Read-only traversal over statements (and the expressions inside)."""

    def visit_stmt(self, node: S.Stmt) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            method(node)
        self.generic_visit_stmt(node)

    def generic_visit_stmt(self, node: S.Stmt) -> None:
        if isinstance(node, S.For):
            self.visit(node.extent)
            self.visit_stmt(node.body)
        elif isinstance(node, S.IfThenElse):
            self.visit(node.condition)
            self.visit_stmt(node.then_case)
            if node.else_case is not None:
                self.visit_stmt(node.else_case)
        elif isinstance(node, S.BufferStore):
            self.visit(node.value)
            for i in node.indices:
                self.visit(i)
        elif isinstance(node, S.SeqStmt):
            for s in node.stmts:
                self.visit_stmt(s)
        elif isinstance(node, S.Allocate):
            self.visit_stmt(node.body)
        elif isinstance(node, S.Evaluate):
            self.visit(node.call)
        elif isinstance(node, S.DmaCopy):
            for i in node.dst_base:
                self.visit(i)
            for i in node.src_base:
                self.visit(i)


class StmtMutator(ExprMutator):
    """Rebuilding traversal over statements.

    Hooks named ``visit_<NodeType>`` fully own their node: they must return
    the replacement statement (``None`` deletes the statement) and call
    :meth:`generic_visit_stmt` themselves if they want recursion.
    """

    def visit_stmt(self, node: S.Stmt) -> Optional[S.Stmt]:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit_stmt(node)

    def generic_visit_stmt(self, node: S.Stmt) -> Optional[S.Stmt]:
        if isinstance(node, S.For):
            extent = self.visit(node.extent)
            body = self.visit_stmt(node.body)
            if body is None:
                return None
            if extent is node.extent and body is node.body:
                return node
            return S.For(node.var, extent, body, node.kind, node.thread_tag)
        if isinstance(node, S.IfThenElse):
            cond = self.visit(node.condition)
            then_case = self.visit_stmt(node.then_case)
            else_case = (
                self.visit_stmt(node.else_case) if node.else_case is not None else None
            )
            if then_case is None and else_case is None:
                return None
            if then_case is None:
                return S.IfThenElse(E.Not(cond), else_case)
            if (
                cond is node.condition
                and then_case is node.then_case
                and else_case is node.else_case
            ):
                return node
            return S.IfThenElse(cond, then_case, else_case)
        if isinstance(node, S.BufferStore):
            value = self.visit(node.value)
            indices = [self.visit(i) for i in node.indices]
            if value is node.value and all(
                n is o for n, o in zip(indices, node.indices)
            ):
                return node
            return S.BufferStore(node.buffer, value, indices)
        if isinstance(node, S.SeqStmt):
            new_stmts = []
            changed = False
            for s in node.stmts:
                ns = self.visit_stmt(s)
                changed = changed or ns is not s
                if ns is not None:
                    new_stmts.append(ns)
            if not changed:
                return node
            if not new_stmts:
                return None
            if len(new_stmts) == 1:
                return new_stmts[0]
            return S.SeqStmt(new_stmts)
        if isinstance(node, S.Allocate):
            body = self.visit_stmt(node.body)
            if body is None:
                return None
            if body is node.body:
                return node
            return S.Allocate(node.buffer, body)
        if isinstance(node, S.Evaluate):
            call = self.visit(node.call)
            if call is node.call:
                return node
            return S.Evaluate(call)
        if isinstance(node, S.DmaCopy):
            dst_base = [self.visit(i) for i in node.dst_base]
            src_base = [self.visit(i) for i in node.src_base]
            if all(n is o for n, o in zip(dst_base, node.dst_base)) and all(
                n is o for n, o in zip(src_base, node.src_base)
            ):
                return node
            return S.DmaCopy(node.dst, dst_base, node.src, src_base, node.size)
        return node


def post_order_exprs(node: E.PrimExpr) -> Iterator[E.PrimExpr]:
    """Yield every sub-expression of ``node`` in post-order."""
    for child in expr_children(node):
        yield from post_order_exprs(child)
    yield node


def collect_vars(node: E.PrimExpr) -> List[E.Var]:
    """All distinct :class:`Var` nodes in ``node`` (in first-seen order)."""
    seen: List[E.Var] = []
    for sub in post_order_exprs(node):
        if isinstance(sub, E.Var) and sub not in seen:
            seen.append(sub)
    return seen


def collect_loads(node: E.PrimExpr) -> List[E.BufferLoad]:
    """All buffer loads in ``node``."""
    return [s for s in post_order_exprs(node) if isinstance(s, E.BufferLoad)]


def iter_stmts(node: S.Stmt) -> Iterator[S.Stmt]:
    """Yield every statement in ``node`` in pre-order."""
    yield node
    if isinstance(node, S.For):
        yield from iter_stmts(node.body)
    elif isinstance(node, S.IfThenElse):
        yield from iter_stmts(node.then_case)
        if node.else_case is not None:
            yield from iter_stmts(node.else_case)
    elif isinstance(node, S.SeqStmt):
        for s in node.stmts:
            yield from iter_stmts(s)
    elif isinstance(node, S.Allocate):
        yield from iter_stmts(node.body)
