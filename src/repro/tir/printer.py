"""Pretty printer producing a TIR-script-like rendering of programs."""

from __future__ import annotations

from . import expr as E
from . import stmt as S

__all__ = ["expr_to_str", "stmt_to_str", "script"]

_PRECEDENCE = {
    E.Or: 1,
    E.And: 2,
    E.LT: 3,
    E.LE: 3,
    E.GT: 3,
    E.GE: 3,
    E.EQ: 3,
    E.NE: 3,
    E.Add: 4,
    E.Sub: 4,
    E.Mul: 5,
    E.FloorDiv: 5,
    E.FloorMod: 5,
}


def expr_to_str(expr: E.PrimExpr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parenthesization."""
    if isinstance(expr, E.Var):
        return expr.name
    if isinstance(expr, E.IntImm):
        if expr.dtype == "bool":
            return "True" if expr.value else "False"
        return str(expr.value)
    if isinstance(expr, E.FloatImm):
        return repr(expr.value)
    if isinstance(expr, (E.Min, E.Max)):
        name = "min" if isinstance(expr, E.Min) else "max"
        return f"{name}({expr_to_str(expr.a)}, {expr_to_str(expr.b)})"
    if isinstance(expr, E.BinaryOp):
        prec = _PRECEDENCE.get(type(expr), 3)
        text = (
            f"{expr_to_str(expr.a, prec)} {expr.op_name} "
            f"{expr_to_str(expr.b, prec + 1)}"
        )
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, E.Not):
        return f"not {expr_to_str(expr.a, 6)}"
    if isinstance(expr, E.Select):
        return (
            f"({expr_to_str(expr.true_value)} if {expr_to_str(expr.cond)} "
            f"else {expr_to_str(expr.false_value)})"
        )
    if isinstance(expr, E.BufferLoad):
        idx = ", ".join(expr_to_str(i) for i in expr.indices)
        return f"{expr.buffer.name}[{idx}]"
    if isinstance(expr, E.Call):
        args = ", ".join(expr_to_str(a) for a in expr.args)
        return f"{expr.op}({args})"
    if isinstance(expr, E.Cast):
        return f"{expr.dtype}({expr_to_str(expr.value)})"
    return f"<{type(expr).__name__}>"


def stmt_to_str(stmt: S.Stmt, indent: int = 0) -> str:
    """Render a statement tree as indented pseudo-Python."""
    pad = "    " * indent
    if isinstance(stmt, S.For):
        head = f"for {stmt.var.name} in range({expr_to_str(stmt.extent)})"
        if stmt.kind is S.ForKind.THREAD_BINDING:
            head += f"  # bind: {stmt.thread_tag}"
        elif stmt.kind is not S.ForKind.SERIAL:
            head += f"  # {stmt.kind.value}"
        return f"{pad}{head}:\n{stmt_to_str(stmt.body, indent + 1)}"
    if isinstance(stmt, S.IfThenElse):
        text = (
            f"{pad}if {expr_to_str(stmt.condition)}:\n"
            f"{stmt_to_str(stmt.then_case, indent + 1)}"
        )
        if stmt.else_case is not None:
            text += f"\n{pad}else:\n{stmt_to_str(stmt.else_case, indent + 1)}"
        return text
    if isinstance(stmt, S.BufferStore):
        idx = ", ".join(expr_to_str(i) for i in stmt.indices)
        return f"{pad}{stmt.buffer.name}[{idx}] = {expr_to_str(stmt.value)}"
    if isinstance(stmt, S.SeqStmt):
        return "\n".join(stmt_to_str(s, indent) for s in stmt.stmts)
    if isinstance(stmt, S.Allocate):
        buf = stmt.buffer
        dims = "x".join(str(d) for d in buf.shape)
        return (
            f"{pad}# alloc {buf.name}: {buf.dtype}[{dims}] @{buf.scope}\n"
            f"{stmt_to_str(stmt.body, indent)}"
        )
    if isinstance(stmt, S.Evaluate):
        return f"{pad}{expr_to_str(stmt.call)}"
    if isinstance(stmt, S.DmaCopy):
        db = ", ".join(expr_to_str(i) for i in stmt.dst_base)
        sb = ", ".join(expr_to_str(i) for i in stmt.src_base)
        return (
            f"{pad}dma_copy({stmt.dst.name}[{db}] <- {stmt.src.name}[{sb}],"
            f" n={stmt.size})"
        )
    return f"{pad}<{type(stmt).__name__}>"


def script(stmt: S.Stmt) -> str:
    """Public alias used by examples to show lowered programs."""
    return stmt_to_str(stmt)
