"""Integer interval arithmetic over TIR expressions.

Used for bounds inference (cache-region sizing), boundary-check proving,
loop-bound tightening and the timing walker's loop partitioning.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import expr as E

__all__ = ["Interval", "eval_interval"]


class Interval:
    """A closed integer interval ``[lo, hi]``; ``None`` bounds are infinite."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[int], hi: Optional[int]) -> None:
        self.lo = lo
        self.hi = hi

    @classmethod
    def point(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def everything(cls) -> "Interval":
        return cls(None, None)

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.lo}, {self.hi}]"

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(_sub(self.lo, other.hi), _sub(self.hi, other.lo))

    def __mul__(self, other: "Interval") -> "Interval":
        candidates = []
        unbounded = False
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    unbounded = True
                else:
                    candidates.append(a * b)
        if unbounded or not candidates:
            # A product with an unbounded endpoint is unbounded unless the
            # other side is exactly zero; keep it simple and give up.
            if self.lo == self.hi == 0 or other.lo == other.hi == 0:
                return Interval.point(0)
            return Interval.everything()
        return Interval(min(candidates), max(candidates))

    def floordiv(self, other: "Interval") -> "Interval":
        if not other.is_point or other.lo == 0:
            return Interval.everything()
        d = other.lo
        lo = None if self.lo is None else _fdiv_bound(self.lo, d)
        hi = None if self.hi is None else _fdiv_bound(self.hi, d)
        if d < 0:
            lo, hi = hi, lo
        return Interval(lo, hi)

    def floormod(self, other: "Interval") -> "Interval":
        if not other.is_point or other.lo <= 0:
            return Interval.everything()
        d = other.lo
        if (
            self.lo is not None
            and self.hi is not None
            and self.lo // d == self.hi // d
        ):
            return Interval(self.lo % d, self.hi % d)
        return Interval(0, d - 1)

    def min_with(self, other: "Interval") -> "Interval":
        return Interval(_opt(min, self.lo, other.lo), _opt_strict(min, self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        return Interval(_opt_strict(max, self.lo, other.lo), _opt(max, self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        return Interval(_opt(min, self.lo, other.lo), _opt(max, self.hi, other.hi))


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + b


def _sub(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return a - b


def _fdiv_bound(a: int, d: int) -> int:
    return a // d


def _opt(f, a: Optional[int], b: Optional[int]) -> Optional[int]:
    """min/max where ``None`` means "unbounded in the weak direction"."""
    if a is None or b is None:
        return None
    return f(a, b)


def _opt_strict(f, a: Optional[int], b: Optional[int]) -> Optional[int]:
    """min/max where a known bound wins over an unbounded one.

    E.g. ``min(x, hi=None)`` with other ``hi=5`` is at most 5.
    """
    if a is None:
        return b
    if b is None:
        return a
    return f(a, b)


def eval_interval(
    expr: E.PrimExpr, env: Dict[E.Var, Interval]
) -> Optional[Interval]:
    """Interval of an integer expression given variable intervals.

    Returns ``None`` for expressions the analysis cannot handle (loads,
    calls, float arithmetic).  Missing variables are treated as unbounded.
    """
    if isinstance(expr, E.IntImm):
        return Interval.point(expr.value)
    if isinstance(expr, E.Var):
        return env.get(expr, Interval.everything())
    if isinstance(expr, E.Cast):
        return eval_interval(expr.value, env)
    if isinstance(expr, E.BinaryOp):
        a = eval_interval(expr.a, env)
        b = eval_interval(expr.b, env)
        if a is None or b is None:
            return None
        if isinstance(expr, E.Add):
            return a + b
        if isinstance(expr, E.Sub):
            return a - b
        if isinstance(expr, E.Mul):
            return a * b
        if isinstance(expr, E.FloorDiv):
            return a.floordiv(b)
        if isinstance(expr, E.FloorMod):
            return a.floormod(b)
        if isinstance(expr, E.Min):
            return a.min_with(b)
        if isinstance(expr, E.Max):
            return a.max_with(b)
        if isinstance(expr, (E.CmpOp, E.And, E.Or)):
            truth = _cmp_interval(expr, a, b)
            return truth
        return None
    if isinstance(expr, E.Select):
        t = eval_interval(expr.true_value, env)
        f = eval_interval(expr.false_value, env)
        if t is None or f is None:
            return None
        return t.union(f)
    return None


def _cmp_interval(expr: E.BinaryOp, a: Interval, b: Interval) -> Interval:
    """Interval of a boolean expression as {0,1} subsets."""

    def truth(always: bool, never: bool) -> Interval:
        if always:
            return Interval.point(1)
        if never:
            return Interval.point(0)
        return Interval(0, 1)

    def lt(x: Interval, y: Interval) -> Interval:
        always = x.hi is not None and y.lo is not None and x.hi < y.lo
        never = x.lo is not None and y.hi is not None and x.lo >= y.hi
        return truth(always, never)

    def le(x: Interval, y: Interval) -> Interval:
        always = x.hi is not None and y.lo is not None and x.hi <= y.lo
        never = x.lo is not None and y.hi is not None and x.lo > y.hi
        return truth(always, never)

    if isinstance(expr, E.LT):
        return lt(a, b)
    if isinstance(expr, E.LE):
        return le(a, b)
    if isinstance(expr, E.GT):
        return lt(b, a)
    if isinstance(expr, E.GE):
        return le(b, a)
    if isinstance(expr, E.EQ):
        if a.is_point and b.is_point:
            return Interval.point(1 if a.lo == b.lo else 0)
        disjoint = (
            a.hi is not None
            and b.lo is not None
            and a.hi < b.lo
            or a.lo is not None
            and b.hi is not None
            and a.lo > b.hi
        )
        return Interval.point(0) if disjoint else Interval(0, 1)
    if isinstance(expr, E.NE):
        eq = _cmp_interval(E.EQ(expr.a, expr.b), a, b)
        if eq.is_point:
            return Interval.point(1 - eq.lo)
        return Interval(0, 1)
    if isinstance(expr, E.And):
        if a.is_point and a.lo == 0 or b.is_point and b.lo == 0:
            return Interval.point(0)
        if a.is_point and a.lo == 1 and b.is_point and b.lo == 1:
            return Interval.point(1)
        return Interval(0, 1)
    if isinstance(expr, E.Or):
        if a.is_point and a.lo == 1 or b.is_point and b.lo == 1:
            return Interval.point(1)
        if a.is_point and a.lo == 0 and b.is_point and b.lo == 0:
            return Interval.point(0)
        return Interval(0, 1)
    return Interval(0, 1)
