"""Statement nodes for loop-based TIR.

The statement language is deliberately small: loop nests, conditionals,
buffer stores, allocations and intrinsic calls (DMA and host↔DPU transfer
intrinsics) are sufficient to express every program ATiM generates.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from .buffer import Buffer
from .expr import Call, PrimExpr, as_expr

__all__ = [
    "Stmt",
    "ForKind",
    "For",
    "IfThenElse",
    "BufferStore",
    "SeqStmt",
    "Allocate",
    "Evaluate",
    "DmaCopy",
    "Intrin",
    "seq",
]


class ForKind(enum.Enum):
    """How a loop executes.

    ``THREAD_BINDING`` loops carry a ``thread_tag``: ``blockIdx.*`` for
    inter-DPU parallelism (DPU binding) and ``threadIdx.x`` for intra-DPU
    tasklet parallelism, mirroring ATiM's repurposing of GPU-style binds.
    """

    SERIAL = "serial"
    PARALLEL = "parallel"  # host multi-thread loop
    UNROLLED = "unroll"
    THREAD_BINDING = "thread_binding"


class Stmt:
    """Base class of statements (identity-hashed, immutable by convention)."""

    __slots__ = ()

    def __repr__(self) -> str:
        from .printer import stmt_to_str

        return stmt_to_str(self)


class For(Stmt):
    """``for var in range(extent): body`` with an execution kind."""

    __slots__ = ("var", "extent", "body", "kind", "thread_tag")

    def __init__(
        self,
        var,
        extent,
        body: Stmt,
        kind: ForKind = ForKind.SERIAL,
        thread_tag: Optional[str] = None,
    ) -> None:
        if kind is ForKind.THREAD_BINDING and not thread_tag:
            raise ValueError("thread-binding loops require a thread_tag")
        self.var = var
        self.extent = as_expr(extent)
        self.body = body
        self.kind = kind
        self.thread_tag = thread_tag

    def with_body(self, body: Stmt) -> "For":
        return For(self.var, self.extent, body, self.kind, self.thread_tag)


class IfThenElse(Stmt):
    """Conditional; ``else_case`` may be ``None``."""

    __slots__ = ("condition", "then_case", "else_case")

    def __init__(self, condition, then_case: Stmt, else_case: Optional[Stmt] = None):
        self.condition = as_expr(condition)
        self.then_case = then_case
        self.else_case = else_case


class BufferStore(Stmt):
    """``buffer[indices...] = value``."""

    __slots__ = ("buffer", "value", "indices")

    def __init__(self, buffer: Buffer, value, indices: Sequence[PrimExpr]) -> None:
        self.buffer = buffer
        self.value = as_expr(value)
        self.indices: Tuple[PrimExpr, ...] = tuple(as_expr(i) for i in indices)


class SeqStmt(Stmt):
    """Statement sequence (flattened on construction)."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]) -> None:
        flat: List[Stmt] = []
        for s in stmts:
            if isinstance(s, SeqStmt):
                flat.extend(s.stmts)
            elif s is not None:
                flat.append(s)
        self.stmts: Tuple[Stmt, ...] = tuple(flat)


class Allocate(Stmt):
    """Allocate ``buffer`` (wram/host scratch) for the duration of ``body``."""

    __slots__ = ("buffer", "body")

    def __init__(self, buffer: Buffer, body: Stmt) -> None:
        self.buffer = buffer
        self.body = body


class Evaluate(Stmt):
    """Evaluate a call expression for its side effect (intrinsics)."""

    __slots__ = ("call",)

    def __init__(self, call: Call) -> None:
        self.call = call


class DmaCopy(Stmt):
    """A WRAM↔MRAM DMA burst: ``dst[dst_base+0:+n] = src[src_base+0:+n]``.

    Produced by DMA-aware boundary-check elimination (§5.3.1) when a
    contiguous, unconditional element-copy loop is replaced by a single
    ``mram_read``/``mram_write`` burst.  ``size`` is the element count of
    the innermost contiguous run; multi-dimensional copies keep outer
    loops and DMA only the last dimension.
    """

    __slots__ = ("dst", "dst_base", "src", "src_base", "size")

    def __init__(
        self,
        dst: "Buffer",
        dst_base: Sequence[PrimExpr],
        src: "Buffer",
        src_base: Sequence[PrimExpr],
        size: int,
    ) -> None:
        self.dst = dst
        self.dst_base = tuple(as_expr(i) for i in dst_base)
        self.src = src
        self.src_base = tuple(as_expr(i) for i in src_base)
        self.size = int(size)

    @property
    def nbytes(self) -> int:
        return self.size * self.dst.elem_bytes


class Intrin:
    """Names of backend intrinsics used in lowered TIR.

    DMA intrinsics (kernel side) follow the UPMEM SDK's ``mram_read`` /
    ``mram_write``; transfer intrinsics (host side) model ``dpu_copy_to`` /
    ``dpu_prepare_xfer``+``dpu_push_xfer`` (bank-parallel).
    """

    MRAM_READ = "mram_read"  # (wram_buf, wram_off, mram_buf, mram_off, n_elems)
    MRAM_WRITE = "mram_write"  # (mram_buf, mram_off, wram_buf, wram_off, n_elems)
    H2D = "h2d"  # (dpu_buf, dpu_off, host_buf, host_off, n, bank_index)
    D2H = "d2h"  # (host_buf, host_off, dpu_buf, dpu_off, n, bank_index)
    PARALLEL_H2D = "parallel_h2d"  # same args, rank-parallel push
    PARALLEL_D2H = "parallel_d2h"
    BARRIER = "barrier"  # intra-DPU tasklet barrier


def seq(*stmts: Optional[Stmt]) -> Stmt:
    """Sequence helper that drops ``None`` and unwraps singletons."""
    flat = [s for s in stmts if s is not None]
    if not flat:
        raise ValueError("empty statement sequence")
    if len(flat) == 1:
        return flat[0]
    return SeqStmt(flat)
