"""Buffers: typed, shaped memory regions with an explicit storage scope.

Scopes model the UPMEM memory hierarchy:

``global``
    Host DRAM (input/output tensors).
``mram``
    Per-DPU Main RAM — the DRAM bank owned by one DPU (64 MB).
``wram``
    Per-tasklet Working RAM scratchpad (64 KB shared per DPU).
``host``
    Host-side temporaries (e.g. partial-reduction buffers).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .expr import IntImm, PrimExpr, as_expr

__all__ = ["Buffer", "SCOPES", "dtype_bytes"]

SCOPES = ("global", "mram", "wram", "host")

_DTYPE_BYTES = {
    "int8": 1,
    "uint8": 1,
    "int16": 2,
    "int32": 4,
    "int64": 8,
    "float32": 4,
    "float64": 8,
    "bool": 1,
}


def dtype_bytes(dtype: str) -> int:
    """Size in bytes of one element of ``dtype``."""
    try:
        return _DTYPE_BYTES[dtype]
    except KeyError:
        raise ValueError(f"unknown dtype {dtype!r}") from None


class Buffer:
    """A shaped, typed memory region.

    Shapes are static (the paper targets static tensor shapes); they are
    stored as plain Python ints.  Buffers are identity-hashed so they can be
    used as dictionary keys throughout the compiler.
    """

    __slots__ = ("name", "shape", "dtype", "scope")

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype: str = "float32",
        scope: str = "global",
    ) -> None:
        if scope not in SCOPES:
            raise ValueError(f"unknown scope {scope!r}; expected one of {SCOPES}")
        if not shape:
            raise ValueError("buffers must have at least one dimension")
        self.name = name
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"buffer {name!r} has non-positive extent: {self.shape}")
        dtype_bytes(dtype)  # validate
        self.dtype = dtype
        self.scope = scope

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        """Number of elements."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * dtype_bytes(self.dtype)

    @property
    def elem_bytes(self) -> int:
        return dtype_bytes(self.dtype)

    def with_scope(self, scope: str, name: Optional[str] = None) -> "Buffer":
        """Copy of this buffer in another storage scope."""
        return Buffer(name or self.name, self.shape, self.dtype, scope)

    def flat_index(self, indices: Sequence[PrimExpr]) -> PrimExpr:
        """Row-major linearization of ``indices`` (for address calculation)."""
        if len(indices) != self.ndim:
            raise ValueError(
                f"buffer {self.name!r} is {self.ndim}-D, got {len(indices)} indices"
            )
        flat: PrimExpr = IntImm(0)
        for extent, idx in zip(self.shape, indices):
            flat = flat * extent + as_expr(idx)
        return flat

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"Buffer({self.name}: {self.dtype}[{dims}] @{self.scope})"
