"""The uniform result of ``repro.compile``: run / run_batch / profile.

Every target returns an :class:`Executable`; callers interact with one
interface regardless of whether the backend is the simulated UPMEM
machine (full functional execution), a roofline model (numpy reference
execution, analytic latency) or the HBM-PIM feasibility estimator
(latency only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..upmem.system import Latency, ProfileResult
from .base import TargetError
from .executor import Executor

__all__ = [
    "Executable",
    "UpmemExecutable",
    "RooflineExecutable",
    "EstimateExecutable",
    "RooflineProfile",
]


class Executable:
    """A compiled program plus the target it was compiled for.

    Uniform surface:

    * :meth:`run` — functional execution against named numpy inputs;
    * :meth:`run_batch` — N independent inputs sharded over a thread pool;
    * :meth:`profile` — the target-native performance breakdown;
    * :attr:`latency` — total predicted/simulated seconds, comparable
      across targets.
    """

    def __init__(
        self,
        target: Any,
        workload: Any = None,
        params: Optional[Dict[str, int]] = None,
    ) -> None:
        self.target = target
        self.workload = workload
        #: Schedule parameters the target chose/was given (None when the
        #: target has no parameter space, e.g. rooflines).
        self.params = params

    # -- execution ----------------------------------------------------------
    def run(
        self, inputs: Optional[Dict[str, np.ndarray]] = None, **named
    ) -> List[np.ndarray]:
        raise TargetError(
            f"target {self.target.kind!r} does not support functional"
            " execution"
        )

    def run_batch(
        self,
        batch: Sequence[Dict[str, np.ndarray]],
        max_workers: Optional[int] = None,
        executor: Optional[Executor] = None,
    ) -> List[List[np.ndarray]]:
        """Execute independent input dicts; results in input order.

        The default shards whole batch items across the thread pool
        (embarrassingly parallel — right for roofline targets whose
        ``run`` is one numpy expression).  ``executor`` supplies a
        caller-owned (typically persistent) :class:`Executor` so a
        serving loop reuses one pool across flushes; an empty batch
        returns ``[]`` without touching any pool.
        """
        batch = list(batch)
        if not batch:
            return []
        return (executor or Executor(max_workers)).map(self.run, batch)

    # -- performance --------------------------------------------------------
    def profile(self) -> Any:
        raise TargetError(f"target {self.target.kind!r} does not profile")

    @property
    def latency(self) -> float:
        """Total predicted latency in seconds."""
        raise NotImplementedError

    def _named_inputs(self, inputs, named) -> Dict[str, np.ndarray]:
        data = dict(inputs or {})
        data.update(named)
        return data


class UpmemExecutable(Executable):
    """A module compiled for the simulated UPMEM machine (or one of the
    PrIM/SimplePIM baseline structures, which share its substrate).

    Wraps a :class:`repro.runtime.Module`; ``profile_override`` lets
    baseline targets substitute a framework-adjusted profile (SimplePIM's
    documented overheads) while keeping functional execution.
    """

    def __init__(
        self,
        module: Any,  # repro.runtime.Module
        target: Any,
        workload: Any = None,
        params: Optional[Dict[str, int]] = None,
        profile_override: Optional[ProfileResult] = None,
    ) -> None:
        super().__init__(target, workload, params)
        self._mod = module
        self._profile_override = profile_override

    # -- module access (schedule/debugging surface) -------------------------
    @property
    def module(self):
        """The wrapped :class:`repro.runtime.Module`."""
        return self._mod

    @property
    def lowered(self):
        return self._mod.lowered

    def script(self) -> str:
        return self._mod.script()

    def source(self) -> str:
        return self._mod.source()

    # -- execution ----------------------------------------------------------
    def run(self, inputs=None, **named) -> List[np.ndarray]:
        return self._mod.run(self._named_inputs(inputs, named))

    def run_batch(
        self, batch, max_workers=None, executor=None
    ) -> List[List[np.ndarray]]:
        """Shard the batch per DPU group across the thread pool.

        Each batch item's DPU grid is cut into contiguous chunks and all
        (item, chunk) jobs share one pool, so even a single-item batch
        parallelizes across its DPUs.  DPUs write disjoint tile regions,
        making the result bit-for-bit identical to sequential ``run``
        calls regardless of interleaving.  ``executor`` reuses a
        caller-owned pool (see :class:`Executor`'s persistent mode); an
        empty batch returns ``[]`` without preparing any state.
        """
        batch = list(batch)
        if not batch:
            return []
        fexec = self._mod.executor
        executor = executor or Executor(max_workers)
        states = [
            fexec.prepare(self._named_inputs(inputs, {})) for inputs in batch
        ]
        chunks = Executor.chunk(fexec.grid_points(), executor.max_workers)
        jobs = [(state, chunk) for state in states for chunk in chunks]
        executor.map(lambda job: fexec.run_points(job[0], job[1]), jobs)
        return [fexec.finalize(state) for state in states]

    # -- performance --------------------------------------------------------
    def profile(self) -> ProfileResult:
        if self._profile_override is not None:
            return self._profile_override
        return self._mod.profile()

    @property
    def latency(self) -> float:
        return self.profile().latency.total


@dataclass
class RooflineProfile:
    """Analytic profile of a roofline target (single-bucket breakdown)."""

    #: The whole roofline time is attributed to the kernel bucket; the
    #: fixed dispatch overhead is split out as ``launch``.
    latency: Latency
    effective_bandwidth: float = 0.0
    peak_flops: float = 0.0


class RooflineExecutable(Executable):
    """CPU/GPU roofline baseline: analytic latency, numpy execution.

    ``run`` evaluates the workload's reference implementation, so the
    roofline targets are functional peers of the UPMEM path (useful for
    cross-checking outputs target-to-target).
    """

    def __init__(self, target: Any, workload: Any, model: Any) -> None:
        super().__init__(target, workload, params=None)
        self.model = model

    def run(self, inputs=None, **named) -> List[np.ndarray]:
        data = self._named_inputs(inputs, named)
        args = []
        for tensor in self.workload.inputs:
            try:
                args.append(data[tensor.name])
            except KeyError:
                raise KeyError(
                    f"missing input {tensor.name!r}; expected"
                    f" {[t.name for t in self.workload.inputs]}"
                ) from None
        return [self.workload.reference(*args)]

    def profile(self) -> RooflineProfile:
        total = self.model.latency(self.workload)
        overhead = self.model.overhead_s
        return RooflineProfile(
            latency=Latency(kernel=total - overhead, launch=overhead),
            effective_bandwidth=self.model.effective_bandwidth,
            peak_flops=self.model.peak_flops,
        )

    @property
    def latency(self) -> float:
        return self.model.latency(self.workload)


class EstimateExecutable(Executable):
    """HBM-PIM feasibility estimate (§8): latency only, no execution —
    the paper models PU command streams, not a functional ISA."""

    def __init__(
        self,
        estimate: Any,  # extensions.hbm_pim.HbmPimEstimate
        target: Any,
        workload: Any = None,
        params: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(target, workload, params)
        self.estimate = estimate

    def profile(self):
        return self.estimate

    @property
    def latency(self) -> float:
        return self.estimate.latency_s
