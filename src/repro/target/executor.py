"""Thread-pool executor sharding independent executions.

``Executable.run_batch`` routes through this layer: batch items are
independent by contract, so they (or, on the UPMEM simulator, the
per-DPU-group slices inside each item) fan out across a shared pool.
Results always come back in submission order, and the sequential
fallback (``max_workers=1``) executes the exact same code path, so
batched execution is bit-for-bit identical to a loop of ``run()`` calls.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence

__all__ = ["Executor", "default_workers"]


def default_workers() -> int:
    """Pool width when the caller does not choose one.

    Defaults to ``min(8, cpu_count)``; the ``REPRO_MAX_WORKERS``
    environment variable overrides the cap entirely (any integer >= 1),
    for machines where 8 threads under- or over-subscribe the simulator.
    """
    env = os.environ.get("REPRO_MAX_WORKERS")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_MAX_WORKERS must be an integer >= 1, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_MAX_WORKERS must be an integer >= 1, got {env!r}"
            )
        return value
    return max(1, min(8, os.cpu_count() or 1))


class Executor:
    """Orders-preserving thread-pool map over independent work items.

    Threads (not processes) because the simulated workloads are
    numpy-dominated — the interpreter releases the GIL inside array ops —
    and because batch items share read-only compiled modules that would
    otherwise be re-pickled per worker.
    """

    def __init__(
        self, max_workers: Optional[int] = None, persistent: bool = False
    ) -> None:
        self.max_workers = max_workers or default_workers()
        #: With ``persistent=True`` the thread pool is created lazily on
        #: first use and reused across ``map`` calls — the serving hot
        #: path flushes many small batches and must not pay pool
        #: construction per flush.  Close with :meth:`close` or use the
        #: executor as a context manager.  The default (one-shot) mode
        #: builds and tears down a pool per call, exactly as before.
        self.persistent = persistent
        self._pool: Optional[ThreadPoolExecutor] = None

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item; results in input order."""
        items = list(items)
        if self.max_workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self.persistent:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            return list(self._pool.map(fn, items))
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def close(self) -> None:
        """Shut down the persistent pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def chunk(items: Sequence[Any], n_chunks: int) -> List[List[Any]]:
        """Split ``items`` into at most ``n_chunks`` contiguous groups.

        Contiguity matters for the UPMEM simulator: a chunk is a group of
        neighbouring DPU grid points, so per-group output writes stay
        disjoint rectangular regions.
        """
        items = list(items)
        n_chunks = max(1, min(n_chunks, len(items) or 1))
        size, extra = divmod(len(items), n_chunks)
        chunks: List[List[Any]] = []
        start = 0
        for i in range(n_chunks):
            end = start + size + (1 if i < extra else 0)
            if end > start:
                chunks.append(items[start:end])
            start = end
        return chunks
