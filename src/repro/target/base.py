"""The :class:`Target` protocol and registry.

A target bundles everything needed to take a workload (or an explicit
schedule) to something executable/measurable on one of the paper's four
evaluation systems: a hardware/model configuration, the named compile
pipeline to route through, a performance model, and — where the backend
supports it — a functional executor.  Registered kinds:

========== ==========================================================
kind       system
========== ==========================================================
upmem      simulated UPMEM machine (full compile + functional run)
prim       PrIM hand-written baselines (default / E / +search variants)
simplepim  SimplePIM framework baseline (VA / GEVA / RED)
cpu        TVM-autotuned CPU roofline (functional run via numpy)
gpu        A5000-class GPU roofline (functional run via numpy)
hbm-pim    Aquabolt-XL MAC-accelerator feasibility estimate (§8)
========== ==========================================================

``get_target("upmem")`` returns a fresh default-configured instance;
construct targets directly (``UpmemTarget(config=...)``) for custom
configurations.  New backends register with :func:`register_target`
instead of forking the driver layer.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = [
    "Target",
    "TargetError",
    "register_target",
    "get_target",
    "has_target",
    "list_targets",
]


class TargetError(RuntimeError):
    """A target cannot compile or execute the requested program."""


class Target(abc.ABC):
    """One backend the front door can compile for.

    Subclasses set :attr:`kind` (the registry key) and implement
    :meth:`compile`.  :meth:`measure` makes a target usable as the
    measurement side of the autotuner, enabling cross-target tuning.
    """

    #: Registry key, e.g. ``"upmem"``.
    kind: str = ""
    #: Named compile pipeline (``repro.pipeline.get_pipeline``) this
    #: target routes through; ``None`` for purely analytic targets.
    pipeline: Optional[str] = None

    # -- identity -----------------------------------------------------------
    @property
    def label(self) -> str:
        """Column label used by the experiment harness (``fig9`` etc.)."""
        return self.kind.replace("-", "_")

    def cache_token(self) -> Optional[str]:
        """Compile-relevant identity mixed into artifact-cache keys.

        ``None`` (the default) means this target's compilation is fully
        determined by inputs already in the key — workload, params,
        hardware config, opt level and pipeline name — so its artifacts
        may share cache entries with any other caller producing the same
        module (e.g. the UPMEM target and a bare ``compile_params``
        sweep).  Override to return a stable token when a target alters
        compilation *beyond* those knobs (extra pass configuration,
        context attributes, ...), so its artifacts never alias ones it
        would compile differently.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(kind={self.kind!r})"

    # -- capabilities -------------------------------------------------------
    def supports(self, workload: Any) -> bool:
        """Whether :meth:`compile` can handle this workload."""
        return True

    # -- compilation --------------------------------------------------------
    @abc.abstractmethod
    def compile(
        self,
        workload_or_schedule: Any,
        opt_level: str = "O3",
        params: Optional[Dict[str, int]] = None,
        **hints: Any,
    ) -> "Executable":
        """Compile a workload or schedule into an :class:`Executable`.

        ``hints`` carries target-specific extras (e.g. ``size=`` for the
        PrIM parameter tables, ``total_macs=`` for HBM-PIM schedules);
        targets ignore hints they do not understand, so generic drivers
        can pass one kwarg set to every target.
        """

    # -- tuning support -----------------------------------------------------
    def measure(self, module: Any, workload: Any) -> float:
        """Latency (seconds) of a compiled module on this target.

        Used by the autotuner to score candidates; the default raises so
        analytic-only targets opt in explicitly.
        """
        raise TargetError(f"target {self.kind!r} cannot measure modules")

    @property
    def search_config(self):
        """The :class:`~repro.upmem.UpmemConfig` bounding the sketch
        space when tuning for this target (the UPMEM grid is the shared
        scheduling substrate; non-UPMEM targets tune over the default
        grid)."""
        from ..upmem.config import DEFAULT_CONFIG

        return DEFAULT_CONFIG


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_TARGETS: Dict[str, Callable[[], Target]] = {}


def register_target(
    kind: str, factory: Callable[[], Target], overwrite: bool = False
) -> None:
    """Register a target factory under ``kind``; refuses silent clobbering."""
    if kind in _TARGETS and not overwrite:
        raise TargetError(f"target {kind!r} is already registered")
    _TARGETS[kind] = factory


def get_target(spec: Union[str, Target]) -> Target:
    """Resolve a target spec: instances pass through, strings construct a
    fresh default-configured instance of the registered kind."""
    if isinstance(spec, Target):
        return spec
    try:
        factory = _TARGETS[spec]
    except (KeyError, TypeError):
        raise TargetError(
            f"unknown target {spec!r}; registered: {list_targets()}"
        ) from None
    return factory()


def has_target(kind: str) -> bool:
    return kind in _TARGETS


def list_targets() -> List[str]:
    """Registered target kinds, sorted."""
    return sorted(_TARGETS)
