"""``repro.compile`` — the single user-facing compile entry point.

::

    import repro
    from repro.workloads import mtv

    exe = repro.compile(mtv(4096, 4096), target="upmem")
    out, = exe.run(A=a, B=b)
    print(exe.latency, repro.list_targets())

One call works for every registered target; the divergent per-backend
entry points (``repro.build``, ``cpu_latency``, ``prim_profile``,
``simplepim_profile``) remain as deprecation shims over this.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from .base import Target, get_target
from .executable import Executable

__all__ = ["compile"]


def compile(
    workload_or_schedule: Any,
    target: Union[str, Target] = "upmem",
    opt_level: str = "O3",
    params: Optional[Dict[str, int]] = None,
    tuned: bool = False,
    db: Optional[Any] = None,
    tune_trials: int = 64,
    tune_seed: int = 0,
    **hints: Any,
) -> Executable:
    """Compile a workload or explicit schedule for a target.

    Parameters
    ----------
    workload_or_schedule:
        A :class:`repro.workloads.Workload` (the target picks or is given
        schedule parameters) or a hand-built
        :class:`repro.schedule.Schedule` (targets with a compile pipeline
        only).
    target:
        Registered kind string (see :func:`repro.target.list_targets`) or
        a configured :class:`Target` instance.
    opt_level:
        PIM-aware optimization level ``O0``..``O3`` (§5.3).
    params:
        Explicit sketch parameters for workload compilation; default is
        the target's canonical choice (sketch seed, PrIM table, ...).
    tuned:
        Use autotuned parameters instead of the target's canonical
        defaults.  With ``db=`` pointing at a persistent tuning database
        (see :class:`repro.autotune.TuningCache`), a previously tuned
        (workload, target, config) group resolves instantly from the
        stored best; otherwise ``tune_trials`` search trials run first
        (and persist into ``db`` when given).  Ignored for explicit
        schedules and when ``params`` is passed.
    db / tune_trials / tune_seed:
        Persistent-store path and search budget/seed for ``tuned=True``.
    hints:
        Target-specific extras, e.g. ``size="64MB"`` (PrIM parameter
        table row) or ``total_macs=`` (HBM-PIM schedule estimates).
        Targets ignore hints they do not understand.

    Returns the target's :class:`Executable` with the uniform
    ``run`` / ``run_batch`` / ``profile`` / ``latency`` surface.

    A :class:`repro.graph.ModelGraph` compiles node-by-node instead:
    ``target`` becomes the PIM side of the placement (glue nodes stay on
    the host), and the result is a
    :class:`~repro.graph.executable.GraphExecutable`.
    """
    from ..graph.ir import ModelGraph

    if isinstance(workload_or_schedule, ModelGraph):
        from ..graph.executable import compile_graph

        if params is not None:
            raise ValueError(
                "params= does not apply to a ModelGraph — pin schedule"
                " parameters per node (Node.params / the builder's"
                " params= overrides)"
            )

        graph_hints = {
            k: v
            for k, v in hints.items()
            if k in (
                "host_target", "placement", "policy", "pool", "max_workers"
            )
        }
        return compile_graph(
            workload_or_schedule,
            target=target,
            opt_level=opt_level,
            tuned=tuned,
            db=db,
            tune_trials=tune_trials,
            **graph_hints,
        )
    target = get_target(target)
    if tuned and params is None:
        from ..schedule import Schedule

        if not isinstance(workload_or_schedule, Schedule):
            from ..autotune.tuner import tuned_params

            params = tuned_params(
                workload_or_schedule,
                target=target,
                db=db,
                n_trials=tune_trials,
                seed=tune_seed,
                # Tune at the level the result will compile at: O0 and
                # O3 measure differently, so they form separate db
                # groups and must not trade winners.
                optimize=opt_level,
            )
    return target.compile(
        workload_or_schedule, opt_level=opt_level, params=params, **hints
    )
