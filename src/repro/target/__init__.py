"""Target-centric front end: one ``compile()`` across every backend.

A :class:`Target` bundles a backend's configuration, compile pipeline,
performance model and (where supported) functional executor;
:func:`compile` turns a workload or schedule into a uniform
:class:`Executable`.  See :mod:`repro.target.base` for the registry and
:mod:`repro.target.targets` for the six built-in kinds.
"""

from .base import (
    Target,
    TargetError,
    get_target,
    has_target,
    list_targets,
    register_target,
)
from .compile import compile
from .executable import (
    EstimateExecutable,
    Executable,
    RooflineExecutable,
    RooflineProfile,
    UpmemExecutable,
)
from .executor import Executor, default_workers
from .targets import (
    CpuTarget,
    GpuTarget,
    HbmPimTarget,
    PrimTarget,
    SimplePimTarget,
    UpmemTarget,
    default_params,
)

__all__ = [
    "compile",
    "Target",
    "TargetError",
    "register_target",
    "get_target",
    "has_target",
    "list_targets",
    "Executable",
    "UpmemExecutable",
    "RooflineExecutable",
    "RooflineProfile",
    "EstimateExecutable",
    "Executor",
    "default_workers",
    "UpmemTarget",
    "PrimTarget",
    "SimplePimTarget",
    "CpuTarget",
    "GpuTarget",
    "HbmPimTarget",
    "default_params",
]
