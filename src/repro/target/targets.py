"""The six built-in targets (paper §6: evaluated systems).

All module-compiling targets share the UPMEM scheduling substrate — PrIM
and SimplePIM baselines are *structural* reproductions as schedules, and
the HBM-PIM estimate reinterprets the lowered grid/tile structure — so
they compile through the same named pipelines and differ in parameter
choice and performance model.  The CPU/GPU targets are rooflines with
numpy functional execution.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..lowering import LowerOptions
from ..schedule import Schedule
from ..upmem.config import DEFAULT_CONFIG, UpmemConfig
from ..upmem.system import PerformanceModel
from ..workloads import Workload
from .base import Target, TargetError, has_target, register_target
from .executable import (
    EstimateExecutable,
    Executable,
    RooflineExecutable,
    UpmemExecutable,
)

__all__ = [
    "UpmemTarget",
    "PrimTarget",
    "SimplePimTarget",
    "CpuTarget",
    "GpuTarget",
    "HbmPimTarget",
    "default_params",
]


def default_params(
    workload: Workload, config: Optional[UpmemConfig] = None
) -> Dict[str, int]:
    """A sensible un-tuned parameter setting for a workload: the primary
    sketch seed (max-parallelism plain candidate) the tuner would measure
    first."""
    from ..autotune.sketch import param_space
    from ..autotune.tuner import seed_params

    cfg = config or DEFAULT_CONFIG
    space = param_space(workload, max_dpus=cfg.n_dpus)
    return seed_params(space, cfg.n_dpus)[0]


def _wrap_module(target, lowered, workload, params, profile_override=None):
    from ..runtime import Module

    module = Module(lowered, target.config)
    return UpmemExecutable(
        module,
        target,
        workload=workload,
        params=params,
        profile_override=profile_override,
    )


class UpmemTarget(Target):
    """The simulated UPMEM machine — ATiM's primary backend.

    Compiles schedules and workloads through the ``build`` pipeline;
    workloads without explicit ``params`` get the sketch defaults (run
    the autotuner for tuned parameters).
    """

    kind = "upmem"
    pipeline = "build"

    def __init__(
        self,
        config: Optional[UpmemConfig] = None,
        engine: Optional[Any] = None,
    ) -> None:
        self.config = config or DEFAULT_CONFIG
        self._engine = engine

    @property
    def engine(self):
        """Compile engine (process-wide default unless one was injected)."""
        if self._engine is None:
            from ..autotune.compile import default_engine

            self._engine = default_engine()
        return self._engine

    @property
    def search_config(self) -> UpmemConfig:
        return self.config

    def supports(self, workload: Workload) -> bool:
        from ..autotune.sketch import param_space

        try:
            param_space(workload, max_dpus=self.config.n_dpus)
        except (KeyError, ValueError):
            return False
        return True

    def compile(
        self,
        workload_or_schedule: Any,
        opt_level: str = "O3",
        params: Optional[Dict[str, int]] = None,
        name: Optional[str] = None,
        ctx: Optional[Any] = None,
        **hints: Any,
    ) -> Executable:
        if isinstance(workload_or_schedule, Schedule):
            from ..runtime import Module, build as _build_schedule

            module = _build_schedule(
                workload_or_schedule,
                name=name,
                options=LowerOptions(optimize=opt_level),
                config=self.config,
                ctx=ctx,
            )
            return UpmemExecutable(module, self, params=params)
        workload = workload_or_schedule
        params = params or default_params(workload, self.config)
        artifact = self.engine.compile(
            workload, params, optimize=opt_level, config=self.config,
            target=self,
        )
        if not artifact.ok:
            raise TargetError(
                f"invalid params {params} for {workload.name}:"
                f" {artifact.error}"
            )
        if artifact.verified is False:
            raise TargetError(
                f"params {params} violate hardware constraints for"
                f" {workload.name}: {artifact.verify_reason}"
            )
        return _wrap_module(self, artifact.module, workload, params)

    def measure(self, module: Any, workload: Any = None) -> float:
        return PerformanceModel(self.config).profile(module).latency.total


class PrimTarget(Target):
    """PrIM hand-written baselines, reproduced structurally (§6).

    ``variant`` selects the paper's three configurations: ``"default"``
    (documented PrIM parameters), ``"e"`` (DPU count grid-searched) and
    ``"search"`` (DPUs x tasklets x caching tile grid-searched, still
    1-D tiling).
    """

    kind = "prim"
    pipeline = "build"
    VARIANTS = ("default", "e", "search")

    def __init__(
        self,
        variant: str = "default",
        config: Optional[UpmemConfig] = None,
    ) -> None:
        if variant not in self.VARIANTS:
            raise ValueError(
                f"variant must be one of {self.VARIANTS}, got {variant!r}"
            )
        self.variant = variant
        self.config = config or DEFAULT_CONFIG

    @property
    def label(self) -> str:
        return "prim" if self.variant == "default" else f"prim_{self.variant}"

    def supports(self, workload: Workload) -> bool:
        from ..baselines.prim import prim_params

        try:
            prim_params(workload)
        except KeyError:
            return False
        return True

    @property
    def search_config(self) -> UpmemConfig:
        return self.config

    def params_for(
        self, workload: Workload, size: Optional[str] = None
    ) -> Dict[str, int]:
        """The variant's parameter choice, without compiling where
        possible: the default variant is a table lookup; the searched
        variants inherently profile candidates to pick a winner."""
        from ..baselines import prim

        if self.variant == "default":
            return prim.prim_params(workload, size=size)
        return self.compile(workload, size=size).params

    def compile(
        self,
        workload_or_schedule: Any,
        opt_level: str = "O3",
        params: Optional[Dict[str, int]] = None,
        size: Optional[str] = None,
        **hints: Any,
    ) -> Executable:
        from ..autotune.compile import compile_params
        from ..baselines import prim

        if isinstance(workload_or_schedule, Schedule):
            raise TargetError(
                "the prim target reproduces fixed kernel structures; compile"
                " a Workload (explicit schedules belong on target='upmem')"
            )
        workload = workload_or_schedule
        profile_override = None
        if self.variant == "default":
            params = params or prim.prim_params(workload, size=size)
        else:
            if self.variant == "e":
                tasklets, caches = prim.PRIM_E_TASKLET_RANGE, prim.PRIM_E_CACHE_RANGE
            else:
                tasklets = prim.PRIM_SEARCH_TASKLET_RANGE
                caches = prim.PRIM_SEARCH_CACHE_RANGE
            profile_override, params = prim._grid_search(
                workload,
                prim._dpu_search_range(workload),
                tasklets,
                caches,
                self.config,
            )
        module = compile_params(workload, params, "O3", self.config)
        if module is None:
            raise TargetError(
                f"PrIM baseline parameters invalid for {workload.name}:"
                f" {params}"
            )
        return _wrap_module(self, module, workload, params, profile_override)

    def measure(self, module: Any, workload: Any = None) -> float:
        return PerformanceModel(self.config).profile(module).latency.total


class SimplePimTarget(Target):
    """SimplePIM framework baseline (Chen et al., PACT 2023): VA / GEVA /
    RED with the framework's documented handler overheads."""

    kind = "simplepim"
    pipeline = "build"

    def __init__(self, config: Optional[UpmemConfig] = None) -> None:
        self.config = config or DEFAULT_CONFIG

    def supports(self, workload: Workload) -> bool:
        from ..baselines.simplepim import SIMPLEPIM_WORKLOADS

        return getattr(workload, "name", None) in SIMPLEPIM_WORKLOADS

    @property
    def search_config(self) -> UpmemConfig:
        return self.config

    def compile(
        self,
        workload_or_schedule: Any,
        opt_level: str = "O3",
        params: Optional[Dict[str, int]] = None,
        **hints: Any,
    ) -> Executable:
        from ..baselines.simplepim import simplepim_build

        if isinstance(workload_or_schedule, Schedule):
            raise TargetError(
                "the simplepim target reproduces the framework's fixed"
                " handler structure; compile a Workload"
            )
        workload = workload_or_schedule
        if not self.supports(workload):
            raise TargetError(
                f"SimplePIM supports va/geva/red, not {workload.name!r}"
            )
        module, profile = simplepim_build(workload, self.config)
        return _wrap_module(self, module, workload, None, profile)


class _RooflineTarget(Target):
    """Shared behaviour of the CPU/GPU roofline baselines."""

    def __init__(self, model: Any) -> None:
        self.model = model

    @property
    def config(self):
        return self.model

    def supports(self, workload: Workload) -> bool:
        return getattr(workload, "reference", None) is not None

    def compile(
        self,
        workload_or_schedule: Any,
        opt_level: str = "O3",
        params: Optional[Dict[str, int]] = None,
        **hints: Any,
    ) -> Executable:
        if isinstance(workload_or_schedule, Schedule):
            raise TargetError(
                f"the {self.kind} roofline models workloads analytically;"
                " explicit schedules belong on target='upmem'"
            )
        return RooflineExecutable(self, workload_or_schedule, self.model)

    def measure(self, module: Any, workload: Any = None) -> float:
        if workload is None:
            raise TargetError(
                f"the {self.kind} roofline measures workloads, not modules"
            )
        return self.model.latency(workload)


class CpuTarget(_RooflineTarget):
    """TVM-autotuned CPU baseline as a calibrated roofline (§6)."""

    kind = "cpu"

    def __init__(self, model: Optional[Any] = None) -> None:
        from ..baselines.cpu import CpuModel

        super().__init__(model or CpuModel())


class GpuTarget(_RooflineTarget):
    """A5000-class GPU roofline (used for the Fig. 4 comparison)."""

    kind = "gpu"

    def __init__(self, model: Optional[Any] = None) -> None:
        from ..baselines.cpu import GpuModel

        super().__init__(model or GpuModel())


class HbmPimTarget(Target):
    """Samsung HBM-PIM (Aquabolt-XL) feasibility estimate — paper §8.

    First-class target wrapping :mod:`repro.extensions.hbm_pim`: MAC
    reductions compile through the registered ``hbm-pim`` pipeline and
    yield a PU-command-stream latency estimate.  Not functionally
    executable (the paper models command streams, not an ISA).
    """

    kind = "hbm-pim"
    pipeline = "hbm-pim"

    def __init__(
        self,
        config: Optional[Any] = None,  # HbmPimConfig
        upmem_config: Optional[UpmemConfig] = None,
    ) -> None:
        from ..extensions.hbm_pim import HbmPimConfig

        self.config = config or HbmPimConfig()
        #: UPMEM machine description bounding the sketch substrate the
        #: two-level PU binding is derived from.
        self.upmem_config = upmem_config or DEFAULT_CONFIG

    @property
    def search_config(self) -> UpmemConfig:
        return self.upmem_config

    def supports(self, workload: Workload) -> bool:
        from ..extensions.hbm_pim import HbmPimEstimator

        op = getattr(getattr(workload, "output", None), "op", None)
        combiner = getattr(op, "combiner", None)
        return HbmPimEstimator(self.config).supports(combiner)

    def total_macs(self, workload: Workload) -> float:
        """MAC count of a reduction workload (multiply+accumulate pairs)."""
        return workload.flops / 2.0

    def compile(
        self,
        workload_or_schedule: Any,
        opt_level: str = "O3",
        params: Optional[Dict[str, int]] = None,
        total_macs: Optional[float] = None,
        **hints: Any,
    ) -> Executable:
        from ..extensions.hbm_pim import estimate_schedule
        from ..pipeline import PassContext

        workload = None
        if isinstance(workload_or_schedule, Schedule):
            schedule = workload_or_schedule
            if total_macs is None:
                raise TargetError(
                    "compiling a raw schedule for hbm-pim requires"
                    " total_macs= (workloads derive it from their flop"
                    " count)"
                )
        else:
            workload = workload_or_schedule
            if not self.supports(workload):
                raise TargetError(
                    f"hbm-pim accelerates MAC reductions only;"
                    f" {workload.name!r} is not one"
                )
            from ..autotune.sketch import generate_schedule

            params = params or default_params(workload, self.upmem_config)
            try:
                schedule = generate_schedule(workload, params)
            except Exception as exc:
                raise TargetError(
                    f"cannot sketch {workload.name} for hbm-pim: {exc}"
                ) from exc
            if total_macs is None:
                total_macs = self.total_macs(workload)
        ctx = PassContext(config=self.upmem_config, opt_level=opt_level)
        estimate = estimate_schedule(schedule, total_macs, self.config, ctx)
        return EstimateExecutable(estimate, self, workload, params)

    def measure(self, module: Any, workload: Any = None) -> float:
        """Estimate an already-lowered module (cross-target tuning)."""
        from ..extensions.hbm_pim import HbmPimEstimator

        if workload is None:
            raise TargetError("hbm-pim measurement needs the workload")
        estimate = HbmPimEstimator(self.config).estimate(
            module, self.total_macs(workload)
        )
        return estimate.latency_s if estimate.supported else float("inf")


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------

for _kind, _factory in (
    ("upmem", UpmemTarget),
    ("prim", PrimTarget),
    ("simplepim", SimplePimTarget),
    ("cpu", CpuTarget),
    ("gpu", GpuTarget),
    ("hbm-pim", HbmPimTarget),
):
    if not has_target(_kind):
        register_target(_kind, _factory)
