"""The schedule: per-stage loop structure and the Table-2 primitives.

A :class:`Schedule` owns one :class:`Stage` per operation.  Stages expose
the primitives ATiM repurposes for UPMEM (paper Table 2):

=====================  ====================================================
``split``/``reorder``   loop tiling — host-to-DPU distribution and
                        multi-level kernel tiling
``bind``                DPU binding (``blockIdx.*``) and tasklet binding
                        (``threadIdx.x``)
``rfactor``             hierarchical reduction (DPU partials + host final)
``cache_read``/``cache_write`` + ``compute_at``/``reverse_compute_at``
                        WRAM caching tiles and their locations
``parallel``            host post-processing parallelism
``unroll``              kernel inner-loop unrolling
=====================  ====================================================
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..te import ComputeOp, IterVar, PlaceholderOp, Tensor
from ..te.operation import _fresh_name
from ..tir import Buffer, BufferLoad, Var, collect_loads, substitute
from .relations import Fuse, Split, derives_from_reduce

__all__ = ["Schedule", "Stage", "ScheduleError"]

THREAD_TAGS = ("blockIdx.x", "blockIdx.y", "blockIdx.z", "threadIdx.x")


class ScheduleError(ValueError):
    """Raised when a primitive is applied in an unsupported way."""


class Stage:
    """Scheduling state for one operation."""

    def __init__(self, schedule: "Schedule", op) -> None:
        self.schedule = schedule
        self.op = op
        roots: List[IterVar] = []
        if isinstance(op, ComputeOp):
            roots = list(op.axis) + list(op.reduce_axis)
        self.root_iter_vars: List[IterVar] = roots
        self.leaf_iter_vars: List[IterVar] = list(roots)
        self.relations: List[object] = []
        self.binds: Dict[IterVar, str] = {}
        self.annotations: Dict[IterVar, str] = {}
        # Attachment: None = root; else (consumer_stage, itervar).
        self.attach: Optional[Tuple["Stage", IterVar]] = None
        # Caching bookkeeping --------------------------------------------
        # cache_reads: source buffer -> cache stage (applies to this
        # stage's loads of that buffer).
        self.cache_reads: Dict[Buffer, "Stage"] = {}
        # For cache_read stages: (source_buffer, scope); buffer sized at
        # lowering time.
        self.cache_source: Optional[Buffer] = None
        self.cache_scope: Optional[str] = None
        # For compute stages with a write cache: scope of the accumulator.
        self.write_cache_scope: Optional[str] = None
        # The writeback stage created by cache_write.
        self.writeback: Optional["Stage"] = None
        # For writeback stages: the compute stage they drain.
        self.writeback_of: Optional["Stage"] = None

    # -- identity ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self.op.name

    @property
    def is_compute(self) -> bool:
        return isinstance(self.op, ComputeOp)

    @property
    def kind(self) -> str:
        if self.cache_source is not None:
            return "cache_read"
        if self.writeback_of is not None:
            return "writeback"
        if isinstance(self.op, PlaceholderOp):
            return "placeholder"
        return "compute"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        leaves = ", ".join(iv.name for iv in self.leaf_iter_vars)
        return f"Stage({self.name}: [{leaves}])"

    # -- helpers ----------------------------------------------------------
    def _check_leaf(self, ivar: IterVar) -> None:
        if ivar not in self.leaf_iter_vars:
            raise ScheduleError(
                f"{ivar!r} is not a current leaf axis of stage {self.name!r}"
            )

    def leaf_is_reduce(self, ivar: IterVar) -> bool:
        """Whether a leaf axis descends from a reduction axis."""
        return derives_from_reduce(ivar, self.relations)

    # -- primitives -------------------------------------------------------
    def split(
        self,
        ivar: IterVar,
        factor: Optional[int] = None,
        nparts: Optional[int] = None,
    ) -> Tuple[IterVar, IterVar]:
        """Tile ``ivar`` into ``(outer, inner)``.

        Exactly one of ``factor`` (inner extent) or ``nparts`` (outer
        extent) must be given.  Inexact splits are allowed and produce
        boundary checks during lowering.
        """
        self._check_leaf(ivar)
        if (factor is None) == (nparts is None):
            raise ScheduleError("split needs exactly one of factor/nparts")
        if factor is not None:
            if factor <= 0:
                raise ScheduleError(f"split factor must be positive, got {factor}")
            inner_extent = int(factor)
            outer_extent = math.ceil(ivar.extent / inner_extent)
        else:
            if nparts <= 0:
                raise ScheduleError(f"split nparts must be positive, got {nparts}")
            outer_extent = int(nparts)
            inner_extent = math.ceil(ivar.extent / outer_extent)
        kind = ivar.kind
        outer = IterVar(outer_extent, f"{ivar.name}.o", kind)
        inner = IterVar(inner_extent, f"{ivar.name}.i", kind)
        self.relations.append(Split(ivar, outer, inner, inner_extent))
        pos = self.leaf_iter_vars.index(ivar)
        self.leaf_iter_vars[pos : pos + 1] = [outer, inner]
        return outer, inner

    def fuse(self, outer: IterVar, inner: IterVar) -> IterVar:
        """Fuse two adjacent leaf axes into one."""
        self._check_leaf(outer)
        self._check_leaf(inner)
        io = self.leaf_iter_vars.index(outer)
        ii = self.leaf_iter_vars.index(inner)
        if ii != io + 1:
            raise ScheduleError(
                f"fuse requires adjacent axes; {outer.name} and {inner.name}"
                " are not adjacent"
            )
        if outer.kind != inner.kind:
            raise ScheduleError(
                "cannot fuse a spatial axis with a reduction axis (re-init"
                " of the accumulator would be emitted per partial sum)"
            )
        kind = outer.kind
        fused = IterVar(
            outer.extent * inner.extent, f"{outer.name}.{inner.name}.f", kind
        )
        self.relations.append(Fuse(outer, inner, fused))
        self.leaf_iter_vars[io : io + 2] = [fused]
        return fused

    def reorder(self, *ivars: IterVar) -> None:
        """Reorder the listed leaf axes into the given order.

        Axes not listed keep their positions; the listed ones are placed,
        in order, into the slots the listed ones previously occupied.
        """
        for iv in ivars:
            self._check_leaf(iv)
        if len(set(ivars)) != len(ivars):
            raise ScheduleError("reorder arguments must be distinct")
        positions = sorted(self.leaf_iter_vars.index(iv) for iv in ivars)
        for pos, iv in zip(positions, ivars):
            self.leaf_iter_vars[pos] = iv

    def bind(self, ivar: IterVar, tag: str) -> None:
        """Bind a leaf axis to a DPU grid dimension or the tasklet axis."""
        self._check_leaf(ivar)
        if tag not in THREAD_TAGS:
            raise ScheduleError(f"unknown thread tag {tag!r}; expected {THREAD_TAGS}")
        for iv, existing in self.binds.items():
            if existing == tag and iv is not ivar:
                raise ScheduleError(f"{tag} already bound to {iv.name}")
        self.binds[ivar] = tag

    def unroll(self, ivar: IterVar) -> None:
        """Request full unrolling of a leaf axis."""
        self._check_leaf(ivar)
        self.annotations[ivar] = "unroll"

    def parallel(self, ivar: IterVar) -> None:
        """Execute a host-side loop with CPU threads (post-processing)."""
        self._check_leaf(ivar)
        self.annotations[ivar] = "parallel"

    def compute_at(self, consumer: Union["Stage", Tensor], ivar: IterVar) -> None:
        """Attach this (cache) stage inside ``consumer`` at axis ``ivar``."""
        consumer_stage = self.schedule._as_stage(consumer)
        consumer_stage._check_leaf(ivar)
        self.attach = (consumer_stage, ivar)

    # reverse_compute_at has identical mechanics for writeback stages; the
    # separate name mirrors the paper / TVM API.
    reverse_compute_at = compute_at


class Schedule:
    """A schedule over the operation graph reaching ``outputs``."""

    def __init__(self, outputs: Union[Tensor, Sequence[Tensor]]) -> None:
        if isinstance(outputs, Tensor):
            outputs = [outputs]
        self.outputs: List[Tensor] = list(outputs)
        self.stages: List[Stage] = []
        self._stage_of_buffer: Dict[Buffer, Stage] = {}
        for tensor in self._toposort(self.outputs):
            stage = Stage(self, tensor.op)
            self.stages.append(stage)
            self._stage_of_buffer[tensor.buffer] = stage

    # -- graph construction ------------------------------------------------
    @staticmethod
    def _toposort(outputs: Sequence[Tensor]) -> List[Tensor]:
        order: List[Tensor] = []
        visited = set()

        def visit(t: Tensor) -> None:
            if id(t.op) in visited:
                return
            visited.add(id(t.op))
            if isinstance(t.op, ComputeOp):
                for buf in t.op.input_buffers():
                    producer = _PRODUCERS.get(buf)
                    if producer is not None:
                        visit(producer)
            order.append(t)

        for out in outputs:
            visit(out)
        return order

    # -- lookup -------------------------------------------------------------
    def __getitem__(self, tensor: Union[Tensor, Buffer]) -> Stage:
        return self._as_stage(tensor)

    def _as_stage(self, key: Union[Stage, Tensor, Buffer]) -> Stage:
        if isinstance(key, Stage):
            return key
        buffer = key.buffer if isinstance(key, Tensor) else key
        try:
            return self._stage_of_buffer[buffer]
        except KeyError:
            raise ScheduleError(f"no stage for buffer {buffer!r}") from None

    def compute_stages(self) -> List[Stage]:
        """Root compute stages in dependency order."""
        return [s for s in self.stages if s.kind == "compute"]

    # -- caching primitives ---------------------------------------------------
    def cache_read(
        self,
        consumer: Union[Tensor, Stage],
        source: Union[Tensor, Buffer],
        scope: str = "wram",
    ) -> Stage:
        """Stage a WRAM caching tile for ``consumer``'s loads of ``source``.

        Returns the cache stage; place it with ``compute_at``.
        """
        consumer_stage = self._as_stage(consumer)
        src_buffer = source.buffer if isinstance(source, Tensor) else source
        if src_buffer in consumer_stage.cache_reads:
            raise ScheduleError(
                f"{src_buffer.name!r} already cached for {consumer_stage.name!r}"
            )
        loads = collect_loads(consumer_stage.op.body)
        if not any(ld.buffer is src_buffer for ld in loads):
            raise ScheduleError(
                f"stage {consumer_stage.name!r} does not read {src_buffer.name!r}"
            )
        cache_op = PlaceholderOp(f"{src_buffer.name}_{scope}", (1,), src_buffer.dtype)
        cache_stage = Stage(self, cache_op)
        cache_stage.cache_source = src_buffer
        cache_stage.cache_scope = scope
        consumer_stage.cache_reads[src_buffer] = cache_stage
        self.stages.append(cache_stage)
        return cache_stage

    def cache_write(self, tensor: Union[Tensor, Stage], scope: str = "wram") -> Stage:
        """Accumulate ``tensor`` in a ``scope`` buffer, then write back.

        Returns the writeback stage; place it with ``reverse_compute_at``.
        """
        stage = self._as_stage(tensor)
        if stage.write_cache_scope is not None:
            raise ScheduleError(f"stage {stage.name!r} already has a write cache")
        if not stage.is_compute:
            raise ScheduleError("cache_write applies to compute stages")
        stage.write_cache_scope = scope
        wb_op = PlaceholderOp(f"{stage.name}_wb", (1,), stage.op.tensor.dtype)
        wb_stage = Stage(self, wb_op)
        wb_stage.writeback_of = stage
        stage.writeback = wb_stage
        self.stages.append(wb_stage)
        return wb_stage

    # -- rfactor -----------------------------------------------------------
    def rfactor(self, tensor: Union[Tensor, Stage], ivar: IterVar) -> Tensor:
        """Factor the reduction at leaf axis ``ivar`` into a parallel stage.

        Produces a new tensor ``<name>.rf`` whose leading spatial axis is
        ``ivar`` (partial results, one slice per ``ivar`` value) and turns
        the original stage into a small reduction over those partials —
        lowered later into per-DPU partial reduction plus host final
        reduction (paper §5.2.2).
        """
        stage = self._as_stage(tensor)
        stage._check_leaf(ivar)
        op = stage.op
        if not isinstance(op, ComputeOp) or not op.is_reduction:
            raise ScheduleError("rfactor applies to reduction stages")
        if not stage.leaf_is_reduce(ivar):
            raise ScheduleError("rfactor axis must derive from a reduction axis")
        if stage.binds or stage.cache_reads or stage.write_cache_scope:
            raise ScheduleError("rfactor must be applied before binds/caches")

        from .relations import reconstruct_roots

        recon = reconstruct_roots(stage.root_iter_vars, stage.relations)
        reduce_leaves = [
            iv for iv in stage.leaf_iter_vars if stage.leaf_is_reduce(iv)
        ]
        if ivar not in reduce_leaves:
            raise ScheduleError("rfactor axis must be a reduction leaf")

        # Fresh iteration variables for the rfactor op.
        rf_name = f"{op.name}.rf"
        factor_axis = IterVar(ivar.extent, f"{rf_name}_r", "spatial")
        spatial_axes = [
            IterVar(ax.extent, f"{rf_name}_{ax.name}", "spatial") for ax in op.axis
        ]
        inner_reduce = [
            IterVar(iv.extent, f"{rf_name}_{iv.name}", "reduce")
            for iv in reduce_leaves
            if iv is not ivar
        ]

        # Substitution: original root axis vars -> reconstructions with the
        # stage's leaf vars replaced by the fresh rf vars.
        leaf_map: Dict[Var, Var] = {ivar.var: factor_axis.var}
        for old, new in zip(op.axis, spatial_axes):
            leaf_map[old.var] = new.var
        rest = [iv for iv in reduce_leaves if iv is not ivar]
        for old, new in zip(rest, inner_reduce):
            leaf_map[old.var] = new.var

        subst: Dict[Var, "object"] = {}
        predicates = []
        for root in op.reduce_axis:
            recon_expr = substitute(recon[root.var], leaf_map)
            subst[root.var] = recon_expr
            # Guard against imperfect reduction splits.
            from ..tir import Interval, eval_interval, simplify as _simp

            env = {
                factor_axis.var: Interval(0, factor_axis.extent - 1),
            }
            for iv in spatial_axes + inner_reduce:
                env[iv.var] = Interval(0, iv.extent - 1)
            rng = eval_interval(recon_expr, env)
            if rng is None or rng.hi is None or rng.hi >= root.extent:
                predicates.append(_simp(recon_expr < root.extent))
        for old, new in zip(op.axis, spatial_axes):
            subst[old.var] = new.var

        # Carry forward predicates of an already-rfactored op (nested
        # hierarchical reductions, e.g. DPU level then tasklet level).
        for pred in getattr(op, "predicates", []):
            from ..tir import simplify as _s2

            predicates.append(_s2(substitute(pred, subst)))

        new_body = substitute(op.body, subst)
        rf_op = ComputeOp(
            rf_name,
            [factor_axis] + spatial_axes,
            inner_reduce,
            new_body,
            op.tensor.dtype,
            combiner=op.combiner,
            identity=op.identity,
        )
        rf_op.predicates = predicates  # type: ignore[attr-defined]
        rf_tensor = rf_op.output()

        # Final stage: reduce the partials over the factored axis, writing
        # into the ORIGINAL buffer so downstream consumers are unaffected.
        final_axis = [IterVar(ax.extent, f"{ax.name}.v", "spatial") for ax in op.axis]
        final_reduce = IterVar(ivar.extent, f"{op.name}_rk", "reduce")
        final_body = BufferLoad(
            rf_tensor.buffer,
            [final_reduce.var] + [ax.var for ax in final_axis],
        )
        final_op = ComputeOp(
            f"{op.name}_final",
            final_axis,
            [final_reduce],
            final_body,
            op.tensor.dtype,
            combiner=op.combiner,
            identity=op.identity,
        )
        final_op.tensor = Tensor(final_op, op.tensor.buffer)

        rf_stage = Stage(self, rf_op)
        final_stage = Stage(self, final_op)
        idx = self.stages.index(stage)
        self.stages[idx : idx + 1] = [rf_stage, final_stage]
        self._stage_of_buffer[rf_tensor.buffer] = rf_stage
        self._stage_of_buffer[op.tensor.buffer] = final_stage
        _PRODUCERS[rf_tensor.buffer] = rf_tensor
        return rf_tensor


# Registry mapping buffers to producing tensors (filled by Tensor.__init__).
from ..te.operation import PRODUCERS as _PRODUCERS  # noqa: E402
