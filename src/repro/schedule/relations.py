"""Iteration-variable relations (split/fuse) and axis reconstruction."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..te import IterVar
from ..tir import PrimExpr, Var, simplify

__all__ = ["Split", "Fuse", "reconstruct_roots"]


class Split:
    """``parent`` was split into ``outer * factor + inner``.

    ``exact`` records whether ``factor`` divides the parent extent; inexact
    splits are the source of boundary checks (§5.3 of the paper).
    """

    __slots__ = ("parent", "outer", "inner", "factor", "exact")

    def __init__(self, parent: IterVar, outer: IterVar, inner: IterVar, factor: int):
        self.parent = parent
        self.outer = outer
        self.inner = inner
        self.factor = int(factor)
        self.exact = parent.extent % self.factor == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Split({self.parent.name} -> {self.outer.name}*{self.factor}"
            f"+{self.inner.name})"
        )


class Fuse:
    """``outer`` and ``inner`` were fused into a single ``fused`` axis."""

    __slots__ = ("outer", "inner", "fused")

    def __init__(self, outer: IterVar, inner: IterVar, fused: IterVar) -> None:
        self.outer = outer
        self.inner = inner
        self.fused = fused

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fuse({self.outer.name}, {self.inner.name} -> {self.fused.name})"


def reconstruct_roots(
    roots: Sequence[IterVar], relations: Sequence[object]
) -> Dict[Var, PrimExpr]:
    """Express each root axis variable in terms of leaf variables.

    Walks the relation list backwards, so later relations (closer to the
    leaves) are resolved first.  The returned mapping is used during
    lowering to rebuild original tensor indices ("address calculation").
    """
    values: Dict[Var, PrimExpr] = {}

    def value_of(iv: IterVar) -> PrimExpr:
        return values.get(iv.var, iv.var)

    for rel in reversed(list(relations)):
        if isinstance(rel, Split):
            values[rel.parent.var] = simplify(
                value_of(rel.outer) * rel.factor + value_of(rel.inner)
            )
        elif isinstance(rel, Fuse):
            fused_val = value_of(rel.fused)
            values[rel.outer.var] = simplify(fused_val // rel.inner.extent)
            values[rel.inner.var] = simplify(fused_val % rel.inner.extent)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown relation {rel!r}")

    return {root.var: values.get(root.var, root.var) for root in roots}


def leaf_ranges(leaves: Sequence[IterVar]) -> Dict[Var, tuple]:
    """Map each leaf var to ``(0, extent)`` for interval analyses."""
    return {iv.var: (0, iv.extent) for iv in leaves}


def derives_from_reduce(iv: IterVar, relations: Sequence[object]) -> bool:
    """Whether ``iv`` descends (possibly transitively) from a reduce axis."""
    reduce_set: List[IterVar] = []

    def mark(x: IterVar) -> None:
        if x not in reduce_set:
            reduce_set.append(x)

    for rel in relations:
        if isinstance(rel, Split):
            if rel.parent.is_reduce or rel.parent in reduce_set:
                mark(rel.outer)
                mark(rel.inner)
        elif isinstance(rel, Fuse):
            if (
                rel.outer.is_reduce
                or rel.inner.is_reduce
                or rel.outer in reduce_set
                or rel.inner in reduce_set
            ):
                mark(rel.fused)
    return iv.is_reduce or iv in reduce_set
