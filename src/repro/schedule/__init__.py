"""Schedule primitives (split/reorder/bind/cache/rfactor/...) over TE ops."""

from .relations import Fuse, Split, reconstruct_roots
from .schedule import Schedule, ScheduleError, Stage, THREAD_TAGS

__all__ = [
    "Schedule",
    "Stage",
    "ScheduleError",
    "Split",
    "Fuse",
    "reconstruct_roots",
    "THREAD_TAGS",
]
