"""The cluster: tick loop tying sessions, workers, supervision and
fault injection into one deterministic simulation.

One :class:`Cluster` owns N :class:`~repro.cluster.worker.Worker`\\ s
over a single shared :class:`~repro.serve.pool.ExecutablePool`, a
:class:`~repro.cluster.router.Router`, a
:class:`~repro.cluster.supervisor.Supervisor`, a
:class:`~repro.cluster.batching.ContinuousScheduler` and (optionally) a
:class:`~repro.cluster.faults.FaultInjector`.  :meth:`Cluster.run`
replays a multi-tenant trace on the virtual clock; each tick, in a
fixed order:

1. due faults fire (kill/stall workers),
2. heartbeats are observed, the supervisor transitions states; a
   worker declared dead is fenced and its residents orphaned back to
   the queue (replay-on-readmission restores — and *verifies* — their
   streams),
3. due arrivals are admitted (or rejected: queue cap, or an SLO
   deadline unsatisfiable at submit time — refused up front instead of
   timing out in-queue),
4. queued sessions are placed fair-share round-robin across tenants
   (quota-throttled, retry/backoff-gated), with preemption-by-eviction
   when a KV pool is exhausted,
5. every free worker runs one iteration composed by the scheduler
   (``mode="continuous"``) or over its sealed batch (``mode="whole"``,
   the flushing baseline: a worker admits only when idle and seals
   until every session of the batch completes),
6. decoded tokens retire sessions individually, feeding TTFT/TPOT and
   per-tenant metrics.

Every decision reads only seeded data and the virtual clock, so a run
is bit-for-bit reproducible at any host thread count; with the same
seed the fault schedule, batch compositions, recovery order and final
token digests are identical run over run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import current_tracer
from ..serve.metrics import ServerMetrics
from ..serve.pool import ExecutablePool
from ..workloads.gptj import GPTJConfig
from .batching import ContinuousScheduler
from .faults import KILL, STALL, FaultInjector
from .router import Router
from .session import COMPLETED, QUEUED, REJECTED, RUNNING, Session
from .supervisor import DEAD, RECOVERING, Supervisor
from .traffic import TenantSpec
from .worker import Worker, WorkerConfig, WorkerIteration

__all__ = ["CLUSTER_SIM", "ClusterConfig", "ClusterResult", "Cluster"]

#: Reduced model for cluster studies: cluster experiments decode
#: hundreds of tokens across many sessions, so they run the functional
#: simulator at tiny dimensions (the *timing* model scales separately;
#: determinism and scheduling behavior are dimension-independent).
CLUSTER_SIM = GPTJConfig("gptj-cluster-sim", n_heads=2, d_model=32, head_dim=16)


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of one cluster simulation (all deterministic inputs)."""

    n_workers: int = 2
    #: "continuous" (iteration-level batching) or "whole"
    #: (whole-request flushing — the PR-4-era baseline behavior).
    mode: str = "continuous"
    max_batch: int = 8
    #: Virtual seconds per control tick (arrival/heartbeat/placement
    #: granularity; device time is continuous on the same clock).
    tick_s: float = 0.02
    queue_cap: int = 64
    model: GPTJConfig = field(default_factory=lambda: CLUSTER_SIM)
    page_tokens: int = 4
    max_pages: int = 48
    engine_seed: int = 0
    dispatch_overhead_s: float = 1e-4
    replica_groups: int = 4
    check_references: bool = False
    max_workers: Optional[int] = None
    degraded_after: int = 2
    dead_after: int = 4
    recovery_ticks: int = 3
    backoff_base_s: float = 0.04
    #: Hard stop for the tick loop (a stuck simulation fails loudly).
    max_ticks: int = 100_000

    def __post_init__(self) -> None:
        if self.mode not in ("continuous", "whole"):
            raise ValueError(
                f'mode must be "continuous" or "whole", got {self.mode!r}'
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.tick_s <= 0:
            raise ValueError(f"tick_s must be > 0, got {self.tick_s}")

    def worker_config(self) -> WorkerConfig:
        return WorkerConfig(
            model=self.model,
            page_tokens=self.page_tokens,
            max_pages=self.max_pages,
            engine_seed=self.engine_seed,
            dispatch_overhead_s=self.dispatch_overhead_s,
            replica_groups=self.replica_groups,
            check_references=self.check_references,
            max_workers=self.max_workers,
        )

    @property
    def ttft_floor_s(self) -> float:
        """Admission-time SLO floor: even an otherwise-empty cluster
        pays one dispatch before the first token, so a TTFT deadline
        below it is unsatisfiable at submit time."""
        return self.dispatch_overhead_s


@dataclass
class ClusterResult:
    """Outcome of one trace replay."""

    config: ClusterConfig
    sessions: List[Session]
    metrics: ServerMetrics
    makespan_s: float = 0.0
    ticks: int = 0
    iterations: int = 0
    #: Mean over iteration samples of (batch size / max_batch).
    occupancy_samples: List[int] = field(default_factory=list)
    kv_samples: List[float] = field(default_factory=list)
    router_stats: Dict = field(default_factory=dict)
    pool_stats: Dict = field(default_factory=dict)
    supervisor_transitions: List[Tuple[int, int, str, str]] = field(
        default_factory=list
    )
    faults_fired: List = field(default_factory=list)

    # -- aggregates ----------------------------------------------------------
    @property
    def completed(self) -> List[Session]:
        return [s for s in self.sessions if s.status == COMPLETED]

    @property
    def tokens_decoded(self) -> int:
        return sum(s.tokens_done for s in self.completed)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.tokens_decoded / self.makespan_s

    @property
    def mean_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return sum(self.occupancy_samples) / len(self.occupancy_samples)

    @property
    def mean_kv_utilization(self) -> float:
        if not self.kv_samples:
            return 0.0
        return sum(self.kv_samples) / len(self.kv_samples)

    @property
    def replays(self) -> int:
        return sum(s.replays for s in self.sessions)

    @property
    def replay_ok(self) -> bool:
        return all(s.replay_ok for s in self.sessions)

    def summary(self) -> Dict:
        metrics = self.metrics.to_dict(elapsed_s=self.makespan_s)
        return {
            "mode": self.config.mode,
            "n_workers": self.config.n_workers,
            "completed": len(self.completed),
            "rejected": sum(
                1 for s in self.sessions if s.status == REJECTED
            ),
            "tokens": self.tokens_decoded,
            "makespan_s": self.makespan_s,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "p99_ttft_ms": metrics["ttft_ms"]["p99"],
            "p99_tpot_ms": metrics["tpot_ms"]["p99"],
            "mean_batch_occupancy": self.mean_occupancy,
            "kv_utilization": self.mean_kv_utilization,
            "iterations": self.iterations,
            "preemptions": sum(s.preemptions for s in self.sessions),
            "replays": self.replays,
            "replay_ok": self.replay_ok,
            "faults": len(self.faults_fired),
            "router": self.router_stats,
            "metrics": metrics,
        }


class Cluster:
    """N simulated workers behind a router, under supervision."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        tenants: Optional[Sequence[TenantSpec]] = None,
        faults: Optional[FaultInjector] = None,
        pool: Optional[ExecutablePool] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.tenants = list(tenants or [])
        self.faults = faults
        self.pool = pool if pool is not None else ExecutablePool(capacity=128)
        wc = self.config.worker_config()
        self.workers = [
            Worker(i, wc, self.pool) for i in range(self.config.n_workers)
        ]
        self.router = Router()
        self.supervisor = Supervisor(
            self.config.n_workers,
            degraded_after=self.config.degraded_after,
            dead_after=self.config.dead_after,
            recovery_ticks=self.config.recovery_ticks,
        )
        self.scheduler = ContinuousScheduler(max_batch=self.config.max_batch)
        self.metrics = ServerMetrics()

    # -- admission -----------------------------------------------------------
    def _submit(
        self, session: Session, queue: List[Session], now_s: float
    ) -> None:
        workload = f"L{session.layers}"
        tracer = current_tracer()
        if session.ttft_deadline_s < self.config.ttft_floor_s:
            # SLO unsatisfiable at submit time: even an empty cluster
            # pays one dispatch before the first token.  Refuse now —
            # with a per-tenant count — rather than let it time out.
            session.status = REJECTED
            self.metrics.record_reject(workload)
            self.metrics.record_tenant_reject(session.tenant, slo=True)
            tracer.instant(
                "reject slo-unsatisfiable", track="cluster.control",
                cat="cluster", ts_s=now_s,
                args={"session": session.session_id, "tenant": session.tenant},
            )
            return
        demand = session.layers * -(
            -(session.prompt_tokens + session.decode_tokens)
            // self.config.page_tokens
        )
        if demand > self.config.max_pages:
            # Capacity-infeasible: the session's own KV footprint at
            # full length exceeds a whole worker's page pool, so no
            # amount of preemption could ever let it finish.  Refuse
            # now rather than wedge a worker mid-decode.
            session.status = REJECTED
            self.metrics.record_reject(workload)
            self.metrics.record_tenant_reject(session.tenant, slo=False)
            tracer.instant(
                "reject capacity-infeasible", track="cluster.control",
                cat="cluster", ts_s=now_s,
                args={
                    "session": session.session_id,
                    "pages_needed": demand,
                    "max_pages": self.config.max_pages,
                },
            )
            return
        if len(queue) >= self.config.queue_cap:
            session.status = REJECTED
            self.metrics.record_reject(workload)
            self.metrics.record_tenant_reject(session.tenant, slo=False)
            tracer.instant(
                "reject queue-full", track="cluster.control",
                cat="cluster", ts_s=now_s,
                args={"session": session.session_id},
            )
            return
        self.metrics.record_submit(workload)
        self.metrics.record_tenant_submit(session.tenant)
        queue.append(session)

    def _quota(self, tenant: str) -> int:
        for spec in self.tenants:
            if spec.name == tenant:
                return spec.quota
        return 1 << 30  # unspecified tenants are unthrottled

    def _running_per_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for worker in self.workers:
            for session in worker.residents.values():
                counts[session.tenant] = counts.get(session.tenant, 0) + 1
        return counts

    def _backoff(self, session: Session, now_s: float) -> None:
        session.retries += 1
        session.not_before_s = now_s + self.config.backoff_base_s * (
            2 ** (session.retries - 1)
        )

    def _try_place(self, session: Session, now_s: float) -> bool:
        worker = self.router.place(session, self.workers, self.supervisor)
        if worker is None:
            # Nobody has pages/headroom.  Preemption-by-eviction: the
            # least-loaded placeable worker may free pages by evicting
            # strictly-lower-priority residents of the same model size.
            candidates = [
                w for w in self.workers
                if self.supervisor.placeable(w.worker_id)
                and not w.killed and not w.sealed
            ]
            for cand in sorted(
                candidates,
                key=lambda w: (len(w.residents), w.busy_until_s, w.worker_id),
            ):
                evicted, ok = self.scheduler.evict_for(
                    cand, session, cand.pages_needed(session)
                )
                self._requeue_evicted(evicted, cand, now_s)
                if ok:
                    worker = cand
                    break
            if worker is None:
                self._backoff(session, now_s)
                return False
        replay_s = worker.admit(session, now_s)
        if replay_s:
            worker.busy_until_s = (
                max(now_s, worker.busy_until_s) + replay_s
            )
            current_tracer().timed_span(
                f"replay {session.session_id}",
                track=f"cluster.w{worker.worker_id}",
                cat="cluster", dur_s=replay_s,
                ts_s=max(now_s, worker.busy_until_s - replay_s),
                args={
                    "tokens": session.tokens_done,
                    "replay_ok": session.replay_ok,
                },
            )
        session.status = RUNNING
        return True

    def _requeue_evicted(
        self, evicted: List[Session], worker: Worker, now_s: float
    ) -> None:
        for victim in evicted:
            victim.status = QUEUED
            victim.preemptions += 1
            self._backoff(victim, now_s)
            self._queue.append(victim)
            self.metrics.record_tenant_preemption(victim.tenant)
            current_tracer().instant(
                "preempt", track="cluster.control", cat="cluster",
                ts_s=now_s, args={
                    "session": victim.session_id,
                    "worker": worker.worker_id,
                },
            )

    def _preempt_wedged(self, worker: Worker, now_s: float) -> None:
        """Decode-time preemption-by-eviction.  The scheduler composed
        an *empty* iteration for a worker that still has residents:
        the KV pool is exhausted and every resident's next step crosses
        a page boundary.  Evict same-model residents lowest priority
        first until the highest-priority blocked session can step —
        victims re-queue (with backoff) for digest-verified replay, so
        the worker is guaranteed to make progress next iteration."""
        ranked = self.scheduler.by_priority(list(worker.residents.values()))
        head = ranked[0]
        engine = worker.engine(head.layers)
        need = engine.step_pages(head.sequence)
        evicted: List[Session] = []
        for victim in reversed(ranked):
            if engine.cache.free_pages >= need:
                break
            if victim is head or victim.layers != head.layers:
                continue
            worker.evict(victim)
            evicted.append(victim)
        self._requeue_evicted(evicted, worker, now_s)

    def _place_fair_share(self, now_s: float, tick: int) -> None:
        """Round-robin over tenants (rotated by tick so no tenant owns
        the head of line), one placement per tenant per pass, quotas
        and backoff gates applied."""
        if not self._queue:
            return
        if self.config.mode == "whole":
            # Whole-request flushing admits only batch-at-a-time to an
            # idle worker — never one by one into a running batch.
            self._fill_whole_batches(now_s)
            return
        running = self._running_per_tenant()
        tenant_names = sorted({s.tenant for s in self._queue})
        start = tick % len(tenant_names)
        rotation = tenant_names[start:] + tenant_names[:start]
        progress = True
        while progress and self._queue:
            progress = False
            for tenant in rotation:
                if running.get(tenant, 0) >= self._quota(tenant):
                    continue  # throttled at quota: fair-share hold
                eligible = [
                    s for s in self._queue
                    if s.tenant == tenant and s.not_before_s <= now_s
                ]
                if not eligible:
                    continue
                session = min(eligible, key=lambda s: s.priority())
                if self._try_place(session, now_s):
                    self._queue.remove(session)
                    running[tenant] = running.get(tenant, 0) + 1
                    progress = True

    def _fill_whole_batches(self, now_s: float) -> None:
        """Whole-request baseline: only an *idle* worker admits, it
        takes up to ``max_batch`` sessions at once, and it seals until
        the whole batch has completed."""
        for worker in self.workers:
            if (
                worker.sealed or worker.residents or worker.killed
                or not self.supervisor.placeable(worker.worker_id)
            ):
                continue
            running = self._running_per_tenant()
            eligible = [
                s for s in self._queue if s.not_before_s <= now_s
            ]
            batch = self.scheduler.by_priority(eligible)[
                : self.config.max_batch
            ]
            placed = 0
            for session in batch:
                if running.get(session.tenant, 0) >= self._quota(
                    session.tenant
                ):
                    continue
                if (
                    worker.free_pages(session.layers)
                    >= worker.pages_needed(session)
                ):
                    replay_s = worker.admit(session, now_s)
                    if replay_s:
                        worker.busy_until_s = (
                            max(now_s, worker.busy_until_s) + replay_s
                        )
                    session.status = RUNNING
                    self._queue.remove(session)
                    running[session.tenant] = (
                        running.get(session.tenant, 0) + 1
                    )
                    placed += 1
            if placed:
                worker.sealed = True

    # -- faults + supervision ------------------------------------------------
    def _apply_faults(self, now_s: float) -> List:
        if self.faults is None:
            return []
        fired = self.faults.fire(now_s)
        tracer = current_tracer()
        for event in fired:
            worker = self.workers[event.worker]
            if event.kind == KILL:
                orphans = worker.kill()
                # Orphans stay off-queue until the supervisor *detects*
                # the death (missed heartbeats) — see _observe.  Stash
                # them on the worker's fault record.
                self._orphans.setdefault(event.worker, []).extend(orphans)
            elif event.kind == STALL:
                worker.stall(now_s, event.duration_s)
            tracer.instant(
                f"fault {event.kind}", track="cluster.control",
                cat="cluster", ts_s=now_s,
                args={"worker": event.worker, "duration_s": event.duration_s},
            )
        return fired

    def _observe(self, now_s: float, tick: int) -> None:
        tracer = current_tracer()
        for worker in self.workers:
            before = self.supervisor.state[worker.worker_id]
            after = self.supervisor.observe(
                worker.worker_id, worker.alive(now_s), tick
            )
            if after == before:
                continue
            tracer.instant(
                f"worker {worker.worker_id} {before}->{after}",
                track="cluster.control", cat="cluster", ts_s=now_s,
                args={"worker": worker.worker_id},
            )
            if after == DEAD:
                # Fence: even a stalled-but-alive worker declared dead
                # must not resurrect with stale KV.
                orphans = worker.kill()
                orphans.extend(self._orphans.pop(worker.worker_id, []))
                for session in orphans:
                    session.status = QUEUED
                    session.worker = None
                    self._backoff(session, now_s)
                    self._queue.append(session)
                    self.metrics.record_tenant_failure(session.tenant)
                    tracer.instant(
                        "orphaned", track="cluster.control", cat="cluster",
                        ts_s=now_s, args={"session": session.session_id},
                    )
            elif after == RECOVERING:
                worker.reprovision(now_s)

    # -- completion ----------------------------------------------------------
    def _retire(
        self, iteration: WorkerIteration, worker: Worker
    ) -> None:
        for token in iteration.tokens:
            session = worker.residents.get(token.session_id)
            if session is None:
                continue
            session.record_token(token.t_s, token.digest)
            if session.done:
                worker.evict(session)
                session.status = COMPLETED
                session.finish_s = token.t_s
                workload = f"L{session.layers}"
                self.metrics.record_completion(
                    workload,
                    latency_s=session.finish_s - session.arrival_s,
                    queue_s=(session.admitted_s or session.arrival_s)
                    - session.arrival_s,
                )
                self.metrics.record_token_latencies(
                    session.tenant,
                    ttft_s=session.ttft_s or 0.0,
                    tpot_s=session.tpot_s or 0.0,
                    tokens=session.decode_tokens,
                )
        if worker.sealed and not worker.residents:
            worker.sealed = False

    # -- the loop ------------------------------------------------------------
    def run(self, sessions: Sequence[Session]) -> ClusterResult:
        """Replay a materialized trace to completion."""
        pending = sorted(
            sessions, key=lambda s: (s.arrival_s, s.session_id)
        )
        self._queue: List[Session] = []
        self._orphans: Dict[int, List[Session]] = {}
        result = ClusterResult(
            config=self.config, sessions=list(pending), metrics=self.metrics
        )
        tracer = current_tracer()
        arrival_i = 0
        now_s = 0.0
        tick = 0
        cfg = self.config
        while True:
            if tick >= cfg.max_ticks:
                raise RuntimeError(
                    f"cluster did not converge within {cfg.max_ticks} ticks"
                    f" ({len(self._queue)} queued,"
                    f" {sum(len(w.residents) for w in self.workers)} resident)"
                )
            result.faults_fired.extend(self._apply_faults(now_s))
            self._observe(now_s, tick)
            while (
                arrival_i < len(pending)
                and pending[arrival_i].arrival_s <= now_s
            ):
                self._submit(pending[arrival_i], self._queue, now_s)
                arrival_i += 1
            self._place_fair_share(now_s, tick)
            for worker in self.workers:
                if (
                    not worker.residents
                    or not self.supervisor.active(worker.worker_id)
                    or not worker.alive(now_s)
                    or now_s < worker.busy_until_s
                ):
                    continue
                if cfg.mode == "continuous":
                    batch = self.scheduler.compose(worker)
                    if not batch:
                        self._preempt_wedged(worker, now_s)
                        batch = self.scheduler.compose(worker)
                else:
                    batch = self.scheduler.by_priority(
                        list(worker.residents.values())
                    )
                if not batch:
                    continue
                iteration = worker.iterate(now_s, batch)
                result.iterations += 1
                result.occupancy_samples.append(iteration.batch_size)
                result.kv_samples.append(worker.kv_utilization())
                if tracer.enabled:
                    lane = f"cluster.w{worker.worker_id}"
                    tracer.timed_span(
                        f"iter {worker.iterations - 1}",
                        track=lane, cat="cluster",
                        dur_s=iteration.device_s, ts_s=iteration.start_s,
                        args={
                            "batch": iteration.batch_size,
                            "sessions": [
                                t.session_id for t in iteration.tokens
                            ],
                        },
                    )
                    tracer.counter(
                        "batch_occupancy", iteration.batch_size, track=lane,
                        cat="cluster",
                    )
                    tracer.counter(
                        "kv_utilization", worker.kv_utilization(), track=lane,
                        cat="cluster",
                    )
                self._retire(iteration, worker)
                result.makespan_s = max(result.makespan_s, iteration.end_s)
            if (
                arrival_i >= len(pending)
                and not self._queue
                and not any(w.residents for w in self.workers)
                and not self._orphans
            ):
                # Faults still scheduled past this point would hit an
                # idle cluster — nothing left to orphan; terminate.
                break
            now_s += cfg.tick_s
            tick += 1
        result.ticks = tick
        result.router_stats = self.router.stats()
        result.pool_stats = self.pool.stats()
        result.supervisor_transitions = list(self.supervisor.transitions)
        return result
