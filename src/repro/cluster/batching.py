"""Continuous (iteration-level) batching: SLO-aware iteration
composition and preemption-by-eviction.

The scheduler decides, each time a worker frees up, *which residents
join the next iteration* — the decision that distinguishes continuous
batching from whole-request flushing:

* **Priority** is earliest-deadline-first over each session's *next
  token's* due time: a session still waiting on its first token runs
  against its TTFT deadline, a mid-stream one against its TPOT
  deadline (see :meth:`repro.cluster.session.Session.deadline_s`).
  The order is total (ties broken by arrival, then id), hence
  deterministic.
* **Page preflight**: a session whose next step crosses a KV page
  boundary needs pages *now*; the scheduler admits sessions to the
  iteration in priority order only while the engine's free pool covers
  them, deferring the rest a tick rather than letting an append fail
  mid-iteration.
* **Preemption-by-eviction**: when the pool is exhausted and a
  *higher-priority* session is stuck (can't step, or can't be
  admitted), the lowest-priority resident is evicted — its pages
  freed, the session re-queued for replay elsewhere/later.  Eviction
  only ever sacrifices strictly lower priority, so it cannot livelock
  two sessions against each other.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .session import Session
from .worker import Worker

__all__ = ["ContinuousScheduler"]


class ContinuousScheduler:
    """Iteration composer for one cluster (stateless between calls
    except for counters — all inputs come from cluster state)."""

    def __init__(self, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.max_batch = max_batch
        self.deferred_steps = 0

    @staticmethod
    def by_priority(sessions: List[Session]) -> List[Session]:
        return sorted(sessions, key=lambda s: s.priority())

    def compose(self, worker: Worker) -> List[Session]:
        """Select the next iteration's batch from the worker's
        residents: priority order, capped at ``max_batch``, page
        preflight per model-size engine."""
        chosen: List[Session] = []
        free: Dict[int, int] = {}
        for session in self.by_priority(list(worker.residents.values())):
            if len(chosen) >= self.max_batch:
                break
            engine = worker.engine(session.layers)
            budget = free.setdefault(
                session.layers, engine.cache.free_pages
            )
            need = engine.step_pages(session.sequence)
            if need > budget:
                self.deferred_steps += 1
                continue
            free[session.layers] = budget - need
            chosen.append(session)
        return chosen

    def evict_for(
        self,
        worker: Worker,
        session: Session,
        pages_needed: int,
    ) -> Tuple[List[Session], bool]:
        """Free at least ``pages_needed`` pages on ``session``'s engine
        by evicting strictly-lower-priority residents, lowest priority
        first.  Returns ``(evicted, satisfied)``; on ``satisfied ==
        False`` nothing was sacrificed in vain — evictions still
        happened only if they were individually justified, and the
        caller defers the session."""
        engine = worker.engine(session.layers)
        victims = [
            s for s in self.by_priority(
                [r for r in worker.residents.values()
                 if r.layers == session.layers]
            )
            if s.priority() > session.priority()
        ]
        evicted: List[Session] = []
        while victims and engine.cache.free_pages < pages_needed:
            victim = victims.pop()  # lowest priority first
            worker.evict(victim)
            evicted.append(victim)
        return evicted, engine.cache.free_pages >= pages_needed
