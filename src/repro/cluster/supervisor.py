"""Heartbeat supervision: healthy → degraded → dead → recovering.

The supervisor never sees *why* a worker went quiet — it observes one
boolean per worker per tick (did a heartbeat arrive) and runs a
missed-count state machine, exactly like a production health manager:

* ``HEALTHY`` — heartbeating; placeable.
* ``DEGRADED`` — ``degraded_after`` consecutive misses; keeps its
  residents decoding (it may just be slow) but takes no new
  placements.
* ``DEAD`` — ``dead_after`` consecutive misses; the cluster *fences*
  the worker (discards its state even if it was only stalled — a
  fenced worker must not resurrect with stale KV) and re-queues its
  orphaned sessions.
* ``RECOVERING`` — ``recovery_ticks`` after death the replacement
  comes up; one clean heartbeat promotes it back to ``HEALTHY``.

Transitions are recorded as ``(tick, worker, old, new)`` so tests can
assert the exact recovery order and traces can mark the instants.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["HEALTHY", "DEGRADED", "DEAD", "RECOVERING", "Supervisor"]

HEALTHY = "healthy"
DEGRADED = "degraded"
DEAD = "dead"
RECOVERING = "recovering"


class Supervisor:
    """Missed-heartbeat state machine over a worker fleet."""

    def __init__(
        self,
        n_workers: int,
        degraded_after: int = 2,
        dead_after: int = 4,
        recovery_ticks: int = 3,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not 1 <= degraded_after <= dead_after:
            raise ValueError(
                f"need 1 <= degraded_after <= dead_after, got"
                f" {degraded_after}/{dead_after}"
            )
        self.degraded_after = degraded_after
        self.dead_after = dead_after
        self.recovery_ticks = recovery_ticks
        self.state: Dict[int, str] = {w: HEALTHY for w in range(n_workers)}
        self._missed: Dict[int, int] = {w: 0 for w in range(n_workers)}
        self._recover_at: Dict[int, int] = {}
        #: Full transition log: (tick, worker, old_state, new_state).
        self.transitions: List[Tuple[int, int, str, str]] = []

    def _move(self, tick: int, worker: int, new: str) -> None:
        old = self.state[worker]
        self.state[worker] = new
        self.transitions.append((tick, worker, old, new))

    def observe(self, worker: int, alive: bool, tick: int) -> str:
        """Feed one heartbeat observation; returns the (possibly new)
        state.  Call once per worker per tick, workers in id order —
        the call order is part of the deterministic transition log."""
        state = self.state[worker]
        if state == DEAD:
            # Replacement provisioning is on a timer, not heartbeats
            # (the dead worker can't heartbeat its way back).
            if tick >= self._recover_at[worker]:
                self._move(tick, worker, RECOVERING)
            return self.state[worker]
        if state == RECOVERING:
            if alive:
                self._missed[worker] = 0
                self._move(tick, worker, HEALTHY)
            return self.state[worker]
        if alive:
            self._missed[worker] = 0
            if state == DEGRADED:
                self._move(tick, worker, HEALTHY)
            return self.state[worker]
        self._missed[worker] += 1
        if self._missed[worker] >= self.dead_after:
            self._recover_at[worker] = tick + self.recovery_ticks
            self._move(tick, worker, DEAD)
        elif state == HEALTHY and self._missed[worker] >= self.degraded_after:
            self._move(tick, worker, DEGRADED)
        return self.state[worker]

    # -- policy queries ------------------------------------------------------
    def placeable(self, worker: int) -> bool:
        """May the router place new sessions here?"""
        return self.state[worker] == HEALTHY

    def active(self, worker: int) -> bool:
        """May the worker keep decoding its residents?  (A degraded
        worker may; a dead/recovering one's state is fenced away.)"""
        return self.state[worker] in (HEALTHY, DEGRADED)
