"""repro.cluster — continuous batching on a fault-tolerant,
multi-tenant serving cluster.

The layer above :mod:`repro.serve` and :mod:`repro.decode`: sessions
(:mod:`~repro.cluster.session`) carry per-request token position
through iteration-level batches composed by the SLO-aware
:class:`~repro.cluster.batching.ContinuousScheduler`; N simulated
:class:`~repro.cluster.worker.Worker`\\ s over one shared
:class:`~repro.serve.pool.ExecutablePool` sit behind a least-loaded /
session-affinity :class:`~repro.cluster.router.Router`; a heartbeat
:class:`~repro.cluster.supervisor.Supervisor` and seeded
:class:`~repro.cluster.faults.FaultInjector` exercise failure and
recovery (orphaned sessions replay, digest-verified, on surviving
workers); :mod:`~repro.cluster.traffic` generates multi-tenant
diurnal + bursty traces with quotas and SLO classes.  The whole
simulation runs on the deterministic virtual clock: same seed — same
fault schedule, same batch compositions, same recovery order, same
token digests, at any host thread count.

Quick start::

    from repro.cluster import (
        Cluster, ClusterConfig, default_tenants,
        generate_cluster_trace, sessions_from_trace,
    )

    tenants = default_tenants()
    trace = generate_cluster_trace(24, tenants, seed=7)
    cluster = Cluster(ClusterConfig(n_workers=2, mode="continuous"),
                      tenants=tenants)
    result = cluster.run(sessions_from_trace(trace, tenants))
    print(result.summary()["p99_ttft_ms"])
"""

from .batching import ContinuousScheduler
from .cluster import CLUSTER_SIM, Cluster, ClusterConfig, ClusterResult
from .faults import KILL, STALL, FaultEvent, FaultInjector
from .router import Router
from .session import (
    COMPLETED,
    QUEUED,
    REJECTED,
    RUNNING,
    Session,
    token_digest,
)
from .supervisor import DEAD, DEGRADED, HEALTHY, RECOVERING, Supervisor
from .traffic import (
    ClusterRequest,
    TenantSpec,
    default_tenants,
    generate_cluster_trace,
    sessions_from_trace,
)
from .worker import TokenEvent, Worker, WorkerConfig, WorkerIteration

__all__ = [
    "Session", "token_digest",
    "QUEUED", "RUNNING", "COMPLETED", "REJECTED",
    "TenantSpec", "ClusterRequest",
    "default_tenants", "generate_cluster_trace", "sessions_from_trace",
    "FaultEvent", "FaultInjector", "KILL", "STALL",
    "Supervisor", "HEALTHY", "DEGRADED", "DEAD", "RECOVERING",
    "Router",
    "Worker", "WorkerConfig", "WorkerIteration", "TokenEvent",
    "ContinuousScheduler",
    "Cluster", "ClusterConfig", "ClusterResult", "CLUSTER_SIM",
]
