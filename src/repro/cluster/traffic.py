"""Multi-tenant cluster traffic: diurnal + bursty arrivals, mixed
model sizes, per-tenant SLOs and quotas.

The serve-layer generator (:mod:`repro.serve.traffic`) draws kernel
requests on a tick grid; cluster traffic models *users*: tenants with
weights, admission quotas and SLO classes, arriving by an
inhomogeneous Poisson process — a diurnal sinusoid modulates the rate
(the day/night cycle scaled onto the trace horizon) and a seeded
fraction of arrivals brings a burst of simultaneous sessions (the
thundering-herd shape continuous batching absorbs and whole-request
flushing does not).  Everything derives from one rng seed; two calls
with the same arguments produce byte-identical traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .session import Session

__all__ = [
    "TenantSpec", "ClusterRequest", "default_tenants",
    "generate_cluster_trace", "sessions_from_trace",
]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic share, admission quota and SLO class."""

    name: str
    #: Relative arrival weight (fair-share fraction of the trace).
    weight: float = 1.0
    #: Max sessions this tenant may have running cluster-wide at once;
    #: excess queued arrivals are throttled (held, not rejected).
    quota: int = 4
    ttft_slo_s: float = 1.0
    tpot_slo_s: float = 0.5


@dataclass(frozen=True)
class ClusterRequest:
    """One arrival in a cluster trace (pre-SLO: tenant spec applies
    deadlines when the trace is materialized into sessions)."""

    arrival_s: float
    tenant: str
    session_id: str
    prompt_tokens: int
    decode_tokens: int
    layers: int


def default_tenants(n: int = 3) -> List[TenantSpec]:
    """A small heterogeneous tenant population: one latency-sensitive
    interactive tenant, one throughput batch tenant, background fill."""
    specs = [
        TenantSpec("interactive", weight=2.0, quota=4,
                   ttft_slo_s=0.5, tpot_slo_s=0.25),
        TenantSpec("batch", weight=1.0, quota=6,
                   ttft_slo_s=4.0, tpot_slo_s=2.0),
        TenantSpec("background", weight=0.5, quota=2,
                   ttft_slo_s=8.0, tpot_slo_s=4.0),
    ]
    return specs[:n]


def generate_cluster_trace(
    n_requests: int,
    tenants: Sequence[TenantSpec],
    seed: int = 0,
    mean_interarrival_s: float = 0.05,
    diurnal_amplitude: float = 0.5,
    diurnal_period_s: float = 4.0,
    burst_prob: float = 0.15,
    burst_size: int = 3,
    prompt_tokens: Tuple[int, int] = (2, 6),
    decode_tokens: Tuple[int, int] = (4, 12),
    model_layers: Sequence[Tuple[int, float]] = ((2, 0.75), (3, 0.25)),
) -> List[ClusterRequest]:
    """Seeded multi-tenant arrival trace.

    Arrivals follow an inhomogeneous Poisson process: the instantaneous
    rate is ``1/mean_interarrival_s`` scaled by ``1 +
    diurnal_amplitude * sin(2*pi*t/diurnal_period_s)`` (clamped
    positive), sampled by stepping exponential inter-arrivals at the
    local rate.  Each arrival instant carries one session, or — with
    probability ``burst_prob`` — ``burst_size`` simultaneous sessions.
    Tenant, prompt/decode lengths and model size (``layers``) are drawn
    independently per session; weights need not be normalized.
    """
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if not tenants:
        raise ValueError("need at least one TenantSpec")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError(
            f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
        )
    rng = np.random.default_rng(seed)
    names = [t.name for t in tenants]
    weights = np.array([t.weight for t in tenants], dtype=np.float64)
    weights = weights / weights.sum()
    layer_values = [int(l) for l, _ in model_layers]
    layer_weights = np.array([w for _, w in model_layers], dtype=np.float64)
    layer_weights = layer_weights / layer_weights.sum()

    events: List[ClusterRequest] = []
    t = 0.0
    base_rate = 1.0 / mean_interarrival_s
    while len(events) < n_requests:
        rate = base_rate * (
            1.0 + diurnal_amplitude
            * math.sin(2.0 * math.pi * t / diurnal_period_s)
        )
        t += float(rng.exponential(1.0 / max(rate, 1e-9)))
        burst = burst_size if float(rng.random()) < burst_prob else 1
        for _ in range(min(burst, n_requests - len(events))):
            i = len(events)
            events.append(
                ClusterRequest(
                    arrival_s=t,
                    tenant=names[int(rng.choice(len(names), p=weights))],
                    session_id=f"s{i:04d}",
                    prompt_tokens=int(
                        rng.integers(prompt_tokens[0], prompt_tokens[1] + 1)
                    ),
                    decode_tokens=int(
                        rng.integers(decode_tokens[0], decode_tokens[1] + 1)
                    ),
                    layers=layer_values[
                        int(rng.choice(len(layer_values), p=layer_weights))
                    ],
                )
            )
    return events


def sessions_from_trace(
    trace: Sequence[ClusterRequest],
    tenants: Sequence[TenantSpec],
) -> List[Session]:
    """Materialize a trace into sessions, stamping each tenant's SLO
    class onto its requests."""
    by_name: Dict[str, TenantSpec] = {t.name: t for t in tenants}
    sessions = []
    for req in trace:
        spec = by_name[req.tenant]
        sessions.append(
            Session(
                session_id=req.session_id,
                tenant=req.tenant,
                arrival_s=req.arrival_s,
                prompt_tokens=req.prompt_tokens,
                decode_tokens=req.decode_tokens,
                layers=req.layers,
                ttft_deadline_s=spec.ttft_slo_s,
                tpot_deadline_s=spec.tpot_slo_s,
            )
        )
    return sessions
