"""Seeded fault injection: kill and stall workers mid-decode.

The injector pre-generates its whole schedule from the seed at
construction, so the fault timeline is part of the experiment's
deterministic inputs: the same seed produces the same kills at the
same virtual instants against the same workers, at any host thread
count — which is what makes "determinism under failure" testable at
all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["KILL", "STALL", "FaultEvent", "FaultInjector"]

KILL = "kill"    # worker loses all state (process death); fenced.
STALL = "stall"  # worker freezes for duration_s (GC pause, network
                 # partition); resumes with state intact if the
                 # supervisor has not declared it dead first.


@dataclass(frozen=True)
class FaultEvent:
    at_s: float
    worker: int
    kind: str
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (KILL, STALL):
            raise ValueError(f"kind must be {KILL!r} or {STALL!r}, got {self.kind!r}")
        if self.kind == STALL and self.duration_s <= 0:
            raise ValueError("stall faults need duration_s > 0")


class FaultInjector:
    """Deterministic fault schedule over a worker fleet."""

    def __init__(
        self,
        n_workers: int,
        seed: int = 0,
        n_faults: int = 0,
        horizon_s: float = 1.0,
        stall_s: float = 0.2,
        kinds: Sequence[str] = (KILL, STALL),
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        for _ in range(n_faults):
            events.append(
                FaultEvent(
                    at_s=float(rng.uniform(0.0, horizon_s)),
                    worker=int(rng.integers(n_workers)),
                    kind=kinds[int(rng.integers(len(kinds)))],
                    duration_s=stall_s,
                )
            )
        # Stable total order: time, then worker (simultaneous faults
        # against different workers fire low-id first).
        self._schedule = sorted(events, key=lambda e: (e.at_s, e.worker))
        self._cursor = 0
        #: Faults already fired, in firing order (for reports/tests).
        self.fired: List[FaultEvent] = []

    @classmethod
    def from_events(
        cls, events: Sequence[FaultEvent], n_workers: Optional[int] = None
    ) -> "FaultInjector":
        """Injector with an explicit schedule (scenario tests and the
        fig18 recovery demonstration use a hand-placed kill)."""
        workers = n_workers or (max((e.worker for e in events), default=0) + 1)
        inj = cls(n_workers=workers, n_faults=0)
        inj._schedule = sorted(events, key=lambda e: (e.at_s, e.worker))
        return inj

    @property
    def schedule(self) -> List[FaultEvent]:
        return list(self._schedule)

    def fire(self, now_s: float) -> List[FaultEvent]:
        """Pop every scheduled fault due at or before ``now_s``."""
        due: List[FaultEvent] = []
        while (
            self._cursor < len(self._schedule)
            and self._schedule[self._cursor].at_s <= now_s
        ):
            due.append(self._schedule[self._cursor])
            self._cursor += 1
        self.fired.extend(due)
        return due
