"""Router: deterministic placement — least-loaded with session affinity.

Placement keys are derived entirely from simulation state (resident
counts, virtual busy-clocks, worker ids), so the same trace routes the
same way every run.  Tenant affinity keeps a tenant's sessions
co-located while its preferred worker stays placeable — KV pages and
capacity epochs for similar sequence lengths cluster together — and
falls back to least-loaded when it is not.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .session import Session
from .supervisor import Supervisor
from .worker import Worker

__all__ = ["Router"]


class Router:
    def __init__(self, affinity: bool = True) -> None:
        self.affinity = affinity
        #: tenant -> last worker their sessions were placed on.
        self._tenant_home: Dict[str, int] = {}
        self.placements = 0
        self.affinity_hits = 0

    def _candidates(
        self,
        session: Session,
        workers: List[Worker],
        supervisor: Supervisor,
    ) -> List[Worker]:
        """Workers that may take this session right now: supervisor
        says placeable, the node itself is up, and (whole-request mode)
        its admission window is not sealed."""
        return [
            w for w in workers
            if supervisor.placeable(w.worker_id)
            and not w.killed
            and not w.sealed
            and w.free_pages(session.layers) >= w.pages_needed(session)
        ]

    def place(
        self,
        session: Session,
        workers: List[Worker],
        supervisor: Supervisor,
    ) -> Optional[Worker]:
        """Pick a worker, or ``None`` when nobody can take the session
        (caller defers it — possibly after trying preemption)."""
        candidates = self._candidates(session, workers, supervisor)
        if not candidates:
            return None
        self.placements += 1
        if self.affinity:
            home = self._tenant_home.get(session.tenant)
            for worker in candidates:
                if worker.worker_id == home:
                    self.affinity_hits += 1
                    return worker
        chosen = min(
            candidates,
            key=lambda w: (
                len(w.residents), w.busy_until_s, w.worker_id
            ),
        )
        self._tenant_home[session.tenant] = chosen.worker_id
        return chosen

    def stats(self) -> Dict[str, float]:
        return {
            "placements": self.placements,
            "affinity_hits": self.affinity_hits,
            "affinity_rate": (
                self.affinity_hits / self.placements if self.placements else 0.0
            ),
        }
