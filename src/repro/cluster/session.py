"""Sessions: per-request decode streams with SLOs and replay state.

A :class:`Session` is the cluster's unit of work — one user request
decoding ``decode_tokens`` tokens from a ``prompt_tokens``-token
prompt.  It carries its token *position* (``tokens_done``) through the
whole lifecycle, so iteration-level batching can admit it mid-decode,
retire it individually, preempt it, and — after a worker death — replay
it on another worker from scratch while *proving* the replay
reproduces the original stream: every decoded token's hidden state is
digested (sha256), and a replay re-checks each digest before the
session continues.  Digesting works because the decode engine derives
the sequence's prompt and hidden state from ``(engine seed, sequence
name)`` — any worker built with the same model seed regenerates the
identical stream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "QUEUED", "RUNNING", "COMPLETED", "REJECTED",
    "Session", "token_digest",
]

#: Session lifecycle states.  Preempted and orphaned sessions return to
#: QUEUED (their cluster-side record survives; only worker-side KV is
#: lost) — re-admission replays them, so there is no separate state.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
REJECTED = "rejected"


def token_digest(hidden: np.ndarray) -> str:
    """Short stable digest of one decoded token's hidden state."""
    return hashlib.sha256(np.ascontiguousarray(hidden).tobytes()).hexdigest()[:16]


@dataclass
class Session:
    """One decode request flowing through the cluster."""

    session_id: str
    tenant: str
    arrival_s: float
    prompt_tokens: int
    decode_tokens: int
    #: Model size class — selects the worker-side engine (mixed model
    #: sizes share a worker through per-size engines over one pool).
    layers: int = 2
    #: SLO: first token due within `ttft_deadline_s` of arrival, each
    #: subsequent token within `tpot_deadline_s` of the previous one.
    ttft_deadline_s: float = 1.0
    tpot_deadline_s: float = 0.5

    # -- runtime state (mutated by the cluster) -----------------------------
    status: str = QUEUED
    worker: Optional[int] = None
    tokens_done: int = 0
    admitted_s: Optional[float] = None  # first successful admission
    first_token_s: Optional[float] = None
    last_token_s: Optional[float] = None
    finish_s: Optional[float] = None
    #: Earliest time a re-admission attempt may run (retry backoff).
    not_before_s: float = 0.0
    retries: int = 0
    preemptions: int = 0
    replays: int = 0
    #: Every replayed token's digest matched the original stream.
    replay_ok: bool = True
    #: sha256[:16] of each decoded token's hidden state, in order.
    token_digests: List[str] = field(default_factory=list)

    @property
    def sequence(self) -> str:
        """Engine-side sequence name — also the replay seed root, so it
        must be globally unique and stable across workers."""
        return f"{self.tenant}/{self.session_id}"

    @property
    def done(self) -> bool:
        return self.tokens_done >= self.decode_tokens

    @property
    def total_tokens(self) -> int:
        """Cached positions a (re)admission must hold: prompt plus
        every token already decoded (replay re-appends them)."""
        return self.prompt_tokens + self.tokens_done

    def deadline_s(self) -> float:
        """EDF priority: the next token's due time.  Waiting on the
        first token → TTFT clock from arrival; mid-stream → TPOT clock
        from the previous token."""
        if self.tokens_done == 0 or self.last_token_s is None:
            return self.arrival_s + self.ttft_deadline_s
        return self.last_token_s + self.tpot_deadline_s

    def priority(self) -> Tuple[float, float, str]:
        """Total deterministic order: earliest deadline first, ties by
        arrival then id."""
        return (self.deadline_s(), self.arrival_s, self.session_id)

    def record_token(self, t_s: float, digest: str) -> None:
        self.tokens_done += 1
        self.token_digests.append(digest)
        if self.first_token_s is None:
            self.first_token_s = t_s
        self.last_token_s = t_s

    # -- latency accounting --------------------------------------------------
    @property
    def ttft_s(self) -> Optional[float]:
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Mean inter-token time after the first token (the decode
        cadence the TPOT SLO is about); 0.0 for single-token output."""
        if self.finish_s is None or self.first_token_s is None:
            return None
        if self.decode_tokens <= 1:
            return 0.0
        span = self.last_token_s - self.first_token_s
        return span / (self.decode_tokens - 1)

    def to_dict(self) -> Dict:
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "status": self.status,
            "layers": self.layers,
            "prompt_tokens": self.prompt_tokens,
            "decode_tokens": self.decode_tokens,
            "tokens_done": self.tokens_done,
            "arrival_s": self.arrival_s,
            "ttft_ms": None if self.ttft_s is None else self.ttft_s * 1e3,
            "tpot_ms": None if self.tpot_s is None else self.tpot_s * 1e3,
            "retries": self.retries,
            "preemptions": self.preemptions,
            "replays": self.replays,
            "replay_ok": self.replay_ok,
            "final_digest": self.token_digests[-1] if self.token_digests else None,
        }
