"""Worker: one serving node — decode engines over the shared pool.

A worker hosts the resident sessions placed on it, one
:class:`~repro.decode.engine.DecodeEngine` per model size (``layers``)
so mixed model classes coexist, all compiling through the cluster's
*shared* :class:`~repro.serve.pool.ExecutablePool` (a new worker — or a
replacement after a death — warm-starts from programs its peers
already compiled).  Every worker is built with the *same* engine seed:
model weights are identical fleet-wide, and a sequence's stream is
derived from its name — which is what makes replay-on-recovery land
bit-for-bit on any worker.

The worker also owns the iteration device-time model: one
:meth:`iterate` call decodes one token of every resident (grouped per
engine), charges
:meth:`~repro.decode.engine.IterationReport.device_seconds` to the
worker's ``busy_until_s`` clock, and reports each decoded token with
its digest so the cluster can retire, meter and trace it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..decode.engine import DecodeEngine, StepReport
from ..serve.pool import ExecutablePool
from ..workloads.gptj import GPTJConfig
from .session import Session, token_digest

__all__ = ["WorkerConfig", "TokenEvent", "WorkerIteration", "Worker"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build (and rebuild) its engines."""

    model: GPTJConfig
    page_tokens: int = 4
    #: KV page pool per engine — the resource preemption fights over.
    max_pages: int = 64
    engine_seed: int = 0
    dispatch_overhead_s: float = 1e-4
    #: Idle DPU groups an iteration's kernels replicate across.
    replica_groups: int = 4
    check_references: bool = False
    #: Capacity epochs each engine keeps compiled (mixed positions).
    max_resident_epochs: int = 4
    #: Host thread count for graph execution (never affects results).
    max_workers: Optional[int] = None


@dataclass(frozen=True)
class TokenEvent:
    """One decoded token: which session, when (virtual), and the
    digest that makes replay verifiable."""

    session_id: str
    t_s: float
    digest: str
    report: StepReport


@dataclass(frozen=True)
class WorkerIteration:
    """One iteration's outcome on one worker."""

    worker: int
    start_s: float
    device_s: float
    tokens: Tuple[TokenEvent, ...]

    @property
    def end_s(self) -> float:
        return self.start_s + self.device_s

    @property
    def batch_size(self) -> int:
        return len(self.tokens)


class Worker:
    """One simulated serving node."""

    def __init__(
        self, worker_id: int, config: WorkerConfig, pool: ExecutablePool
    ) -> None:
        self.worker_id = worker_id
        self.config = config
        self.pool = pool
        self.engines: Dict[int, DecodeEngine] = {}
        #: session_id -> Session, admission order.
        self.residents: Dict[str, Session] = {}
        self.busy_until_s = 0.0
        self.iterations = 0
        # Fault state: a killed worker is gone until re-provisioned; a
        # stalled one freezes (no heartbeat, no iterations) until the
        # stall passes — unless the supervisor fences it first.
        self.killed = False
        self.stalled_until_s = 0.0
        #: In whole-request mode: admission sealed until ALL residents
        #: of the current batch complete.
        self.sealed = False

    # -- engines -------------------------------------------------------------
    def engine(self, layers: int) -> DecodeEngine:
        """The engine serving one model size class, built on demand."""
        eng = self.engines.get(layers)
        if eng is None:
            eng = DecodeEngine(
                config=self.config.model,
                layers=layers,
                page_tokens=self.config.page_tokens,
                pool=self.pool,
                max_pages=self.config.max_pages,
                seed=self.config.engine_seed,
                check_references=self.config.check_references,
                max_resident_epochs=self.config.max_resident_epochs,
                max_workers=self.config.max_workers,
            )
            self.engines[layers] = eng
        return eng

    # -- health --------------------------------------------------------------
    def alive(self, now_s: float) -> bool:
        """Would this worker's heartbeat arrive right now?"""
        return not self.killed and now_s >= self.stalled_until_s

    def kill(self) -> List[Session]:
        """Process death (or supervisor fencing): every engine — and
        with it every resident's KV state — is lost.  Returns the
        orphaned sessions for the cluster to re-queue."""
        orphans = list(self.residents.values())
        self.residents.clear()
        self.engines.clear()
        self.killed = True
        self.sealed = False
        return orphans

    def stall(self, now_s: float, duration_s: float) -> None:
        self.stalled_until_s = max(self.stalled_until_s, now_s + duration_s)

    def reprovision(self, now_s: float) -> None:
        """Replacement node comes up: clean slate, shared pool intact
        (it warm-starts from the fleet's compiled programs)."""
        self.killed = False
        self.stalled_until_s = 0.0
        self.busy_until_s = now_s
        self.sealed = False

    # -- admission -----------------------------------------------------------
    def pages_needed(self, session: Session) -> int:
        """KV pages admitting this session allocates (prompt plus any
        already-decoded tokens a replay will re-append)."""
        return self.engine(session.layers).prompt_pages(session.total_tokens)

    def free_pages(self, layers: int) -> int:
        return self.engine(layers).cache.free_pages

    def admit(self, session: Session, now_s: float) -> float:
        """Place a session here; returns device seconds charged (zero
        for a fresh admission — its prompt transfer is part of the
        first iteration's cache events; positive when the session had
        already decoded tokens and must *replay* them to rebuild KV).

        Replay verifies every regenerated token digest against the
        session's recorded stream — the bit-for-bit recovery proof."""
        engine = self.engine(session.layers)
        engine.add_sequence(session.sequence, prompt_tokens=session.prompt_tokens)
        replay_s = 0.0
        if session.tokens_done:
            session.replays += 1
            replay_s = self.config.dispatch_overhead_s
            for k in range(session.tokens_done):
                report = engine.step_seq(session.sequence)
                replay_s += report.total_s
                digest = token_digest(engine.hidden_state(session.sequence))
                if digest != session.token_digests[k]:
                    session.replay_ok = False
        self.residents[session.session_id] = session
        session.worker = self.worker_id
        if session.admitted_s is None:
            session.admitted_s = now_s
        return replay_s

    def evict(self, session: Session) -> int:
        """Preemption-by-eviction: drop the session's KV pages (the
        cluster re-queues it; re-admission replays).  Returns pages
        freed."""
        del self.residents[session.session_id]
        session.worker = None
        return self.engine(session.layers).remove_sequence(session.sequence)

    # -- the iteration -------------------------------------------------------
    def iterate(self, now_s: float, batch: List[Session]) -> WorkerIteration:
        """Run one iteration decoding one token of each session in
        ``batch`` (scheduler-priority order, grouped per model size).
        Each engine's group is one :meth:`DecodeEngine.step_batch`
        call; groups are separate executables, so each pays its own
        dispatch."""
        start = max(now_s, self.busy_until_s)
        device_s = 0.0
        tokens: List[TokenEvent] = []
        by_layers: Dict[int, List[Session]] = {}
        for session in batch:
            by_layers.setdefault(session.layers, []).append(session)
        for layers, group in by_layers.items():
            engine = self.engine(layers)
            iteration = engine.step_batch([s.sequence for s in group])
            device_s += iteration.device_seconds(
                dispatch_overhead_s=self.config.dispatch_overhead_s,
                replica_groups=self.config.replica_groups,
            )
            for session, report in zip(group, iteration.reports):
                tokens.append(
                    TokenEvent(
                        session_id=session.session_id,
                        t_s=0.0,  # stamped below, once device_s is final
                        digest=token_digest(
                            engine.hidden_state(session.sequence)
                        ),
                        report=report,
                    )
                )
        end = start + device_s
        tokens = [
            TokenEvent(ev.session_id, end, ev.digest, ev.report)
            for ev in tokens
        ]
        self.busy_until_s = end
        self.iterations += 1
        return WorkerIteration(
            worker=self.worker_id,
            start_s=start,
            device_s=device_s,
            tokens=tuple(tokens),
        )

    # -- introspection -------------------------------------------------------
    def kv_utilization(self) -> float:
        """Allocated fraction of this worker's page pools (mean over
        its engines; 0.0 with no engines built)."""
        if not self.engines:
            return 0.0
        fractions = [
            1.0 - eng.cache.free_pages / eng.cache.max_pages
            for eng in self.engines.values()
        ]
        return sum(fractions) / len(fractions)
