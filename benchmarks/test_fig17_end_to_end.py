"""Fig. 17 — whole-model decode step over the graph subsystem.

Not a paper figure: the model-graph subsystem's headline benchmark.  One
GPT-J decoder-layer decode step (scaled config, small grids per the
simulator cost model) compiled under three placements, executed
functionally, and checked for the subsystem's core claims: bit-for-bit
parity with per-op execution, reference-matched outputs everywhere, and
a planned memory arena strictly below the naive allocation.
"""

from repro.harness import fig17_end_to_end, render_table

from .conftest import save_report

COLUMNS = [
    "placement", "nodes", "pim_nodes", "host_nodes", "total_ms",
    "steady_state_ms", "compute_ms", "h2d_ms", "d2h_ms", "staging_ms",
    "matches_reference",
]


def test_fig17_decode_step(benchmark):
    data = benchmark.pedantic(
        fig17_end_to_end,
        kwargs=dict(tokens=16),
        rounds=1,
        iterations=1,
    )
    rows = data["rows"]
    save_report(
        "fig17_end_to_end",
        render_table(
            rows, COLUMNS, title="Fig 17: end-to-end GPT-J decode step"
        )
        + "\n\n"
        + render_table(
            data["breakdown"]["mixed"],
            title="Fig 17: per-node breakdown (mixed placement)",
        ),
    )
    by_placement = {r["placement"]: r for r in rows}
    assert set(by_placement) == {"upmem", "cpu", "mixed"}

    # Every placement executes the whole decode step correctly.
    for row in rows:
        assert row["matches_reference"] is True
        assert row["nodes"] == len(data["breakdown"][row["placement"]])

    # Placement actually splits the graph: the PIM placement puts the
    # matvecs on the device, all-CPU puts nothing there, and the mixed
    # split sits strictly between.
    assert by_placement["cpu"]["pim_nodes"] == 0
    assert by_placement["upmem"]["pim_nodes"] > 0
    assert (
        0
        < by_placement["mixed"]["pim_nodes"]
        < by_placement["upmem"]["pim_nodes"]
    )

    # Boundary accounting: a host-only graph moves nothing over the
    # bus; PIM placements stage weights once and pay crossings.
    cpu = by_placement["cpu"]
    assert cpu["h2d_ms"] == 0 and cpu["d2h_ms"] == 0
    assert cpu["staging_ms"] == 0
    for policy in ("upmem", "mixed"):
        row = by_placement[policy]
        assert row["staging_ms"] > 0
        assert row["d2h_ms"] > 0
        assert row["steady_state_ms"] < row["total_ms"]

    # Memory planner: buffer reuse strictly beats naive allocation and
    # never plans below the serial schedule's live peak.
    mem = data["memory"]
    assert mem["arena_bytes"] < mem["naive_bytes"]
    assert mem["arena_bytes"] >= mem["peak_live_bytes"]
    assert mem["reuse_ratio"] > 1.0
