"""Simulator raw speed — scalar interpreter vs vectorized NumPy backend.

Not a paper figure: this gates the functional simulator's own speed,
which bounds every tuning sweep above it.  The vector backend must be
(a) bit-identical to the scalar interpreter and (b) at least 5x faster
wall-clock on the 4MB tensor-op suite (the issue's floor; mtv/mmtv run
far above it).  Raw rows land in ``results/BENCH_sim_speed.json`` so
successive PRs can diff the trajectory.
"""

import json
import math

from repro.harness import render_table, sim_speed

from .conftest import RESULTS_DIR, save_report


def test_sim_speed_vector_vs_scalar(benchmark):
    rows = benchmark.pedantic(sim_speed, rounds=1, iterations=1)
    save_report(
        "sim_speed",
        render_table(rows, title="Simulator speed: scalar vs vector"),
    )
    payload = {
        "rows": rows,
        "geomean_speedup": math.exp(
            sum(math.log(r["speedup"]) for r in rows) / len(rows)
        ),
    }
    path = RESULTS_DIR / "BENCH_sim_speed.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert len(rows) == 4
    for row in rows:
        # The whole point: same bytes, much less time.
        assert row["bit_identical"], row["workload"]
        assert row["speedup"] > 5.0, row
    assert payload["geomean_speedup"] > 10.0
