"""Fig. 4 — boundary-check overhead on CPU / GPU / UPMEM."""

from repro.harness import fig4_boundary_checks, render_table

from .conftest import save_report


def test_fig4_boundary_check_speedups(benchmark):
    rows = benchmark.pedantic(fig4_boundary_checks, rounds=1, iterations=1)
    save_report(
        "fig4_boundary_checks",
        render_table(rows, title="Fig 4: speedup from eliminating boundary checks"),
    )
    assert len(rows) == 9
    for row in rows:
        # The paper: ~20% average on UPMEM, near-zero on CPU/GPU.
        assert row["upmem_speedup"] > 1.08
        assert row["cpu_speedup"] < 1.05
        assert row["gpu_speedup"] < row["cpu_speedup"]
    avg = sum(r["upmem_speedup"] for r in rows) / len(rows)
    assert avg > 1.15
