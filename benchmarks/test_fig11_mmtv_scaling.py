"""Fig. 11 — ATiM's MMTV speedup vs spatial-dimension size."""

from repro.harness import fig11_mmtv_scaling, render_table

from .conftest import save_report


def test_fig11_speedup_vs_spatial_size(benchmark):
    rows = benchmark.pedantic(
        fig11_mmtv_scaling, kwargs=dict(n_trials=24), rounds=1, iterations=1
    )
    save_report("fig11_mmtv_scaling", render_table(rows, title="Fig 11"))
    assert all(r["speedup_vs_prim"] >= 0.95 for r in rows)
    # The paper: speedups are largest for small spatial dimensions (where
    # reduction tiling matters) and plateau as spatial size grows.
    small = [r for r in rows if r["spatial"] <= 5000]
    large = [r for r in rows if r["spatial"] > 50000]
    if small and large:
        avg_small = sum(r["speedup_vs_prim"] for r in small) / len(small)
        avg_large = sum(r["speedup_vs_prim"] for r in large) / len(large)
        assert avg_small >= avg_large * 0.9
    # rfactor is used in the small-spatial regime.
    assert any(r["uses_rfactor"] for r in rows[:3])
