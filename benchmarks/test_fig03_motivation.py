"""Fig. 3 — motivation: caching tiles, tiling schemes, DPU counts."""

from repro.harness import (
    fig3a_cache_tile_sweep,
    fig3b_tiling_schemes,
    fig3c_dpu_sweep,
    render_table,
)

from .conftest import save_report


def test_fig3a_cache_tile_size(benchmark):
    rows = benchmark.pedantic(
        fig3a_cache_tile_sweep, rounds=1, iterations=1
    )
    save_report("fig3a_cache_tiles", render_table(rows, title="Fig 3a: 512x512 GEMV, 1 DPU"))
    by_tile = {r["cache_elems"]: r["kernel_ms"] for r in rows}
    # Tiny tiles drown in DMA setup; the curve flattens by 64 elements.
    assert by_tile[4] > 1.3 * by_tile[64]
    assert by_tile[256] < by_tile[8]


def test_fig3b_tiling_schemes(benchmark):
    rows = benchmark.pedantic(fig3b_tiling_schemes, rounds=1, iterations=1)
    save_report(
        "fig3b_tiling_schemes",
        render_table(rows, title="Fig 3b: 8192x8192 GEMV on 2048 DPUs"),
    )
    totals = {(r["m_dpus"], r["k_dpus"]): r["total_ms"] for r in rows}
    best = min(rows, key=lambda r: r["total_ms"])
    # 2-D tiling (reduction-dimension DPUs > 1) wins over pure 1-D.
    assert best["k_dpus"] > 1
    one_d = [r for r in rows if r["k_dpus"] == 1]
    if one_d:
        assert best["total_ms"] < one_d[0]["total_ms"]


def test_fig3c_dpu_count_sweep(benchmark):
    small = benchmark.pedantic(fig3c_dpu_sweep, rounds=1, iterations=1)
    big = fig3c_dpu_sweep(m=8192, k=8192,
                          dpu_counts=(64, 256, 512, 1024, 2048))
    save_report(
        "fig3c_dpu_sweep",
        render_table(small, title="Fig 3c (512x512)")
        + "\n\n"
        + render_table(big, title="Fig 3c (8192x8192)"),
    )
    # Large tensors want the full system; small tensors plateau early.
    assert min(big, key=lambda r: r["total_ms"])["n_dpus"] >= 1024
    best_small = min(small, key=lambda r: r["total_ms"])
    assert best_small["n_dpus"] <= 512
