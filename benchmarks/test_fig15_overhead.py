"""Fig. 15 — autotuning overhead: round times and candidate scatter."""

import statistics

from repro.harness import fig15_tuning_overhead

from .conftest import save_report


def test_fig15_tuning_overhead(benchmark):
    data = benchmark.pedantic(
        fig15_tuning_overhead,
        kwargs=dict(m=4096, k=4096, n_trials=48),
        rounds=1,
        iterations=1,
    )
    upmem = data["upmem_measured"]
    cpu = data["cpu_measured"]
    lines = [
        "Fig 15: candidate execution times (s)",
        f"UPMEM: n={len(upmem)} min={min(upmem):.4g} max={max(upmem):.4g}"
        f" median={statistics.median(upmem):.4g}",
        f"CPU:   n={len(cpu)} min={min(cpu):.4g} max={max(cpu):.4g}"
        f" median={statistics.median(cpu):.4g}",
        f"rounds: {[round(t, 3) for t in data['upmem_round_times']]}",
    ]
    save_report("fig15_tuning_overhead", "\n".join(lines))

    # The paper's observation: UPMEM candidates show much larger spread
    # (bad tiling configurations are catastrophically slow) than CPU ones.
    upmem_spread = max(upmem) / min(upmem)
    cpu_spread = max(cpu) / min(cpu)
    assert upmem_spread > cpu_spread
    assert upmem_spread > 5.0
    assert data["upmem_round_times"]
