"""Fig. 12 — PIM-aware optimization ablation on misaligned shapes."""

from repro.harness import fig12_pim_opts, render_table

from .conftest import save_report


def test_fig12_opt_ablation(benchmark):
    rows = benchmark.pedantic(
        fig12_pim_opts,
        kwargs=dict(lengths=(72, 91, 123, 145, 164, 196, 212, 245),
                    va_lengths=(1, 4, 8)),
        rounds=1,
        iterations=1,
    )
    save_report("fig12_pim_opts", render_table(rows, title="Fig 12"))

    for row in rows:
        # Each added pass never hurts (kernel time non-increasing O0→O3).
        assert row["kernel_ms_O1"] <= row["kernel_ms_O0"] * 1.001
        assert row["kernel_ms_O2"] <= row["kernel_ms_O1"] * 1.001
        assert row["kernel_ms_O3"] <= row["kernel_ms_O2"] * 1.001

    # DMA elimination is the single largest contributor (paper §7.3).
    mtv_rows = [r for r in rows if r["case"].startswith("mtv")]
    for row in mtv_rows:
        gain_dma = row["kernel_ms_O0"] - row["kernel_ms_O1"]
        gain_rest = row["kernel_ms_O1"] - row["kernel_ms_O3"]
        assert gain_dma > 0
        assert gain_dma >= gain_rest * 0.5

    # Loop-bound tightening helps column-misaligned shapes.
    cols = [r for r in rows if r["misalignment"] == "cols"]
    assert any(r["kernel_ms_O2"] < r["kernel_ms_O1"] * 0.999 for r in cols)
    # Branch hoisting helps row-misaligned shapes.
    rows_mis = [r for r in rows if r["misalignment"] == "rows"]
    assert any(r["kernel_ms_O3"] < r["kernel_ms_O2"] * 0.999 for r in rows_mis)
    # Fully applied, misaligned kernels run markedly faster (paper: up to
    # 14.7% vs hand-tuned; vs unoptimized lowering the gap is larger).
    both = [r for r in rows if r["misalignment"] == "both"]
    assert all(r["speedup_o3_vs_o0"] > 1.2 for r in both)
