"""Shared benchmark utilities.

Every benchmark regenerates one paper figure/table at reduced scale,
asserts the paper's qualitative shape, and writes the rendered rows to
``results/<name>.txt`` so the regenerated series persist.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
