"""Fig. 13 — single-DPU cycle attribution under O0..O3 (uPIMulator role)."""

from repro.harness import fig13_breakdown, render_table

from .conftest import save_report


def test_fig13_cycle_breakdown(benchmark):
    rows = benchmark.pedantic(fig13_breakdown, rounds=1, iterations=1)
    save_report("fig13_breakdown", render_table(rows, title="Fig 13"))

    gemv = {r["level"]: r for r in rows if r["case"].startswith("gemv")}
    va = {r["level"]: r for r in rows if r["case"].startswith("va")}

    for series in (gemv, va):
        # O0 suffers memory stalls from per-element MRAM accesses.
        assert series["O0"]["idle_memory"] > 0.25
        # DMA batching removes most small requests.
        assert series["O1"]["dma_calls"] < series["O0"]["dma_calls"] / 10
        # Dynamic instruction count decreases monotonically O0 → O3.
        instrs = [series[lv]["instructions_norm"] for lv in
                  ("O0", "O1", "O2", "O3")]
        assert instrs == sorted(instrs, reverse=True)
        assert instrs[-1] < 0.5  # paper: large instruction-count reduction

    # GEMV keeps compute-boundedness after optimization (issuable grows).
    assert gemv["O3"]["issuable"] >= gemv["O0"]["issuable"]
