"""Fig. 17 (multi-layer) — full-model decode over managed device memory.

Not a paper figure: the decode subsystem's headline benchmark.  A
3-layer GPT-J (scaled config) decodes 6 tokens over a paged KV cache
and a 2-layer weight-residency budget, and the report must prove the
subsystem's core claims: KV pages grow across steps without graph
replanning (zero programs compile inside a capacity epoch, and a
page-boundary epoch loads only the capacity-sized attention programs),
weight stage/evict events land in the per-layer breakdown, and every
total reproduces bit-for-bit at any worker count.
"""

from repro.harness import fig17_multilayer, render_table

from .conftest import save_report

KWARGS = dict(
    layers=3, tokens=6, prompt_tokens=6, page_tokens=4, seed=0
)

STEP_COLUMNS = [
    "step", "position", "capacity", "compiled_programs", "replanned",
    "compute_ms", "h2d_ms", "d2h_ms", "staging_ms", "cache_growth_ms",
    "total_ms", "reference_ok",
]
LAYER_COLUMNS = [
    "layer", "compute_ms", "h2d_ms", "d2h_ms", "staging_ms",
    "cache_growth_ms", "stages", "evictions",
]


def test_fig17_multilayer_decode(benchmark):
    data = benchmark.pedantic(
        fig17_multilayer, kwargs=KWARGS, rounds=1, iterations=1
    )
    save_report(
        "fig17_multilayer",
        render_table(
            data["rows"], STEP_COLUMNS,
            title="Fig 17 (multi-layer): full-model decode steps",
        )
        + "\n\n"
        + render_table(
            data["per_layer"], LAYER_COLUMNS,
            title="Fig 17 (multi-layer): per-layer totals",
        ),
    )
    rows = data["rows"]
    assert len(rows) == 6
    assert all(r["reference_ok"] is True for r in rows)

    # Paged growth without replanning: prompt 6 at 4 tokens/page runs
    # steps 0-2 at capacity 8; the append after step 2 crosses a page
    # boundary and steps 3-5 run at capacity 12.  Exactly one mid-run
    # replan, and steps inside an epoch compile NOTHING.
    assert [r["capacity"] for r in rows] == [8, 8, 8, 12, 12, 12]
    assert data["replans"] == 1
    for r in rows:
        if not r["replanned"]:
            assert r["compiled_programs"] == 0

    # The first epoch loads the whole program set; the page-boundary
    # epoch pool-hits every capacity-independent program and loads only
    # the attention operators sized to the new capacity.
    assert rows[0]["compiled_programs"] > 6
    boundary = rows[3]
    assert boundary["replanned"] is True
    assert 0 < boundary["compiled_programs"] < 6

    # Weight residency (budget 2 of 3 layers): stage/evict events are
    # visible in the per-layer breakdown, and staging recurs (it is a
    # schedule, not a one-time load).
    per_layer = data["per_layer"]
    assert sum(r["stages"] for r in per_layer) > 3  # > load-once
    assert sum(r["evictions"] for r in per_layer) > 0
    assert sum(r["staging_ms"] for r in per_layer) > 0
    assert all(r["compute_ms"] > 0 for r in per_layer)

    # Cache growth is charged every step, on every layer.
    assert all(r["cache_growth_ms"] > 0 for r in rows)
    assert all(r["cache_growth_ms"] > 0 for r in per_layer)

    # The whole payload — totals, schedules, timings — reproduces
    # bit-for-bit at any worker count.
    assert fig17_multilayer(**KWARGS, max_workers=1) == (
        fig17_multilayer(**KWARGS, max_workers=4)
    )

    # Paged-cache accounting rides along for the --json artifact.
    cache = data["cache"]
    assert cache["pages_allocated"] == 9  # 3 pages x 3 layers
    assert cache["utilization"] == 1.0  # 12 cached tokens fill 3 pages
    assert data["memory"]["utilization"] > 0
