"""Fig. 16 — serving throughput and tail latency under dynamic batching.

Not a paper figure: the serving subsystem's headline benchmark.  One
seeded GPT-J + tensor-op traffic trace replayed per (target, max-batch)
cell; throughput must rise with the batch limit on the PIM target
(kernels replicate across idle DPU groups, launch/dispatch amortizes).
"""

from repro.harness import fig16_serving, render_table

from .conftest import save_report

COLUMNS = [
    "target", "max_batch", "requests", "completed", "rejected", "flushes",
    "mean_batch", "throughput_rps", "p50_ms", "p95_ms", "p99_ms",
    "pool_hit_rate",
]


def test_fig16_batching_throughput(benchmark):
    data = benchmark.pedantic(
        fig16_serving,
        kwargs=dict(n_requests=64, batch_sizes=(1, 4, 16)),
        rounds=1,
        iterations=1,
    )
    rows = data["rows"]
    save_report(
        "fig16_serving",
        render_table(
            rows, COLUMNS, title="Fig 16: serving with dynamic batching"
        ),
    )
    by_cell = {(r["target"], r["max_batch"]): r for r in rows}
    assert len(rows) == 6  # {upmem, cpu} x {1, 4, 16}

    # Every cell serves the whole trace: nothing rejected, nothing lost.
    for row in rows:
        assert row["completed"] == 64 and row["rejected"] == 0

    # Acceptance: batched throughput beats singleton dispatch on upmem,
    # monotonically across the batch limits.
    upmem = [by_cell[("upmem", b)]["throughput_rps"] for b in (1, 4, 16)]
    assert upmem[2] > upmem[1] > upmem[0]

    # Batching amortizes dispatch on the CPU roofline too (weaker: no
    # DPU-group replication there).
    assert by_cell[("cpu", 16)]["throughput_rps"] > (
        by_cell[("cpu", 1)]["throughput_rps"]
    )

    # The batcher actually grouped requests at batch 16.
    assert by_cell[("upmem", 16)]["mean_batch"] > 1.5
    assert by_cell[("upmem", 16)]["flushes"] < 64

    # Tail latency: grouped flushes shorten the busy queue, so p99 at
    # batch 16 must not regress past the singleton policy.
    assert by_cell[("upmem", 16)]["p99_ms"] <= by_cell[("upmem", 1)]["p99_ms"]

    # Full metrics dicts ride along for the --json dump.
    snapshot = data["metrics"]["upmem_b16"]
    for key in ("latency_ms", "queue_wait_ms", "pool", "batch_histogram"):
        assert key in snapshot
