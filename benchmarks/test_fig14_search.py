"""Fig. 14 — balanced sampling + adaptive ε-greedy search convergence."""

from repro.harness import fig14_search_strategies, render_curve

from .conftest import save_report


def test_fig14_search_strategy_convergence(benchmark):
    curves = benchmark.pedantic(
        fig14_search_strategies,
        kwargs=dict(m=4096, k=4096, n_trials=96, seed=0),
        rounds=1,
        iterations=1,
    )
    report = "\n\n".join(
        render_curve(curve, title=name) for name, curve in curves.items()
    )
    finals = {name: curve[-1][1] for name, curve in curves.items()}
    report += f"\n\nfinal GFLOPS: {finals}"
    save_report("fig14_search_strategies", report)

    # All variants improve over their first measurement.
    for name, curve in curves.items():
        assert curve[-1][1] >= curve[0][1], name
    # The combined ATiM strategy converges at least as high as default TVM
    # (paper: +21.2% after 1000 trials; direction check at 96 trials).
    assert finals["atim"] >= finals["default_tvm"] * 0.95
    best = max(finals.values())
    assert finals["atim"] >= best * 0.8
