"""Ablations beyond the paper's figures (DESIGN.md §5).

* transfer-mode ablation: element vs bulk vs bank-parallel (Fig. 7's
  optimization ladder);
* search ablation: cost-model-guided evolution vs pure random sampling;
* residency ablation: steady-state vs cold-start transfer accounting.
"""

import random

from repro.autotune import Tuner, autotune, param_space
from repro.autotune.compile import compile_params
from repro.harness import render_table
from repro.lowering import LowerOptions, lower
from repro.optim import optimize_module
from repro.upmem import UpmemConfig
from repro.upmem.system import PerformanceModel
from repro.workloads import make_workload, mtv

from .conftest import save_report

from tests.conftest import make_mtv_schedule  # reuse the schedule builder


def test_transfer_mode_ablation(benchmark):
    def run():
        rows = []
        model = PerformanceModel()
        for mode in ("element", "bulk", "parallel"):
            sch = make_mtv_schedule(2048, 2048, m_dpus=64, n_tasklets=16,
                                    cache=64)
            module = optimize_module(
                lower(sch, options=LowerOptions(transfer_mode=mode)), "O3"
            )
            prof = model.profile(module)
            rows.append(
                {
                    "mode": mode,
                    "h2d_ms": prof.latency.h2d * 1e3,
                    "d2h_ms": prof.latency.d2h * 1e3,
                    "total_ms": prof.latency.total * 1e3,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_transfer_modes",
        render_table(rows, title="Fig 7 ablation: transfer modes"),
    )
    by_mode = {r["mode"]: r["total_ms"] for r in rows}
    assert by_mode["parallel"] < by_mode["bulk"] < by_mode["element"]


def test_search_vs_random_ablation(benchmark):
    def run():
        wl = make_workload("mtv", "64MB")
        guided = autotune(wl, n_trials=48, seed=1).best_latency

        rng = random.Random(1)
        space = param_space(wl)
        model = PerformanceModel()
        best_random = float("inf")
        measured = 0
        attempts = 0
        while measured < 48 and attempts < 480:
            attempts += 1
            params = {k: rng.choice(v) for k, v in space.items()}
            module = compile_params(wl, params)
            if module is None:
                continue
            measured += 1
            best_random = min(
                best_random, model.profile(module).latency.total
            )
        return guided, best_random

    guided, best_random = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_search_vs_random",
        f"guided: {guided*1e3:.3f} ms,  random: {best_random*1e3:.3f} ms",
    )
    assert guided <= best_random * 1.05


def test_residency_ablation(benchmark):
    def run():
        wl = mtv(4096, 4096)
        module = compile_params(
            wl,
            {"m_dpus": 256, "k_dpus": 8, "n_tasklets": 16, "cache": 64,
             "host_threads": 16},
        )
        steady = PerformanceModel().profile(module).latency
        import dataclasses

        cold_module = dataclasses.replace(module, const_inputs=frozenset())
        cold_cfg = UpmemConfig().with_(resident_partitioned_inputs=False)
        cold = PerformanceModel(cold_cfg).profile(cold_module).latency
        return steady, cold

    steady, cold = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_residency",
        f"steady-state h2d: {steady.h2d*1e3:.3f} ms,"
        f" cold-start h2d: {cold.h2d*1e3:.3f} ms",
    )
    # Cold start pays the weight matrix; steady state only the vector.
    assert cold.h2d > steady.h2d * 5
