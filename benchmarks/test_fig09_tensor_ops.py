"""Fig. 9 — autotuned tensor-program performance vs all baselines."""

from repro.harness import fig9_tensor_ops, render_table, summarize_speedups

from .conftest import save_report

COLUMNS = [
    "workload", "size", "prim_ms", "prim_e_ms", "prim_search_ms",
    "simplepim_ms", "atim_ms", "cpu_ms",
    "atim_speedup_vs_prim", "atim_speedup_vs_prim_search",
    "atim_speedup_vs_cpu",
]


def test_fig9_all_workloads_64mb(benchmark):
    rows = benchmark.pedantic(
        fig9_tensor_ops,
        kwargs=dict(sizes=["64MB"], n_trials=32),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig9_tensor_ops_64mb",
        render_table(rows, COLUMNS, title="Fig 9 (64MB instances)")
        + f"\nATiM vs PrIM: {summarize_speedups(rows, 'atim_speedup_vs_prim')}"
        + f"\nATiM vs PrIM+search:"
        f" {summarize_speedups(rows, 'atim_speedup_vs_prim_search')}",
    )
    assert len(rows) == 7
    for row in rows:
        # ATiM never loses to PrIM (it searches a superset space).
        assert row["atim_speedup_vs_prim"] >= 0.99, row
    summary = summarize_speedups(rows, "atim_speedup_vs_prim")
    # Paper: 2.49x average over PrIM; shape check at reduced trials.
    assert summary["gmean"] > 1.3
    assert summary["max"] > 2.0
    # Reduction-style wins concentrate on matvec workloads.
    by_wl = {r["workload"]: r for r in rows}
    assert by_wl["mtv"]["atim_speedup_vs_prim"] > by_wl["va"][
        "atim_speedup_vs_prim"
    ]


def test_fig9_mtv_size_scaling(benchmark):
    rows = benchmark.pedantic(
        fig9_tensor_ops,
        kwargs=dict(
            workloads=["mtv"],
            sizes=["4MB", "64MB", "256MB", "512MB"],
            n_trials=32,
        ),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig9_mtv_sizes", render_table(rows, COLUMNS, title="Fig 9(d): MTV sizes")
    )
    # PIM-over-CPU advantage grows with tensor size (paper §7.1).
    cpu_speedups = [r["atim_speedup_vs_cpu"] for r in rows]
    assert cpu_speedups[-1] > cpu_speedups[0]
    # ATiM finds 2-D (reduction) tiling on the large instances.
    assert rows[-1]["atim_params"].get("k_dpus", 1) > 1


def test_fig9_simplepim_comparison(benchmark):
    rows = benchmark.pedantic(
        fig9_tensor_ops,
        kwargs=dict(workloads=["va", "red"], sizes=["64MB"], n_trials=24),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig9_simplepim", render_table(rows, title="Fig 9: SimplePIM cases")
    )
    for row in rows:
        # Paper: ATiM outperforms SimplePIM (2.86x average across sizes).
        assert row["atim_speedup_vs_simplepim"] > 1.2
