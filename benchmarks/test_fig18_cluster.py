"""Fig. 18 (cluster) — continuous batching vs. whole-request flushing.

Not a paper figure: the serving-cluster subsystem's headline benchmark.
One seeded diurnal+bursty multi-tenant trace (mixed model sizes,
per-tenant quotas and SLO classes) replays through two identically
configured 2-worker clusters that differ only in batching mode, and
the report must prove the subsystem's core claims: iteration-level
admission beats sealed whole-request batches on throughput AND tail
TTFT, and a seeded mid-decode worker kill recovers every orphaned
session via digest-verified replay.
"""

from repro.harness import fig18_cluster, render_table

from .conftest import save_report

KWARGS = dict(n_requests=24, n_workers=2, seed=7, max_batch=8)

COLUMNS = [
    "mode", "completed", "tokens_per_s", "p99_ttft_ms", "p99_tpot_ms",
    "kv_utilization", "mean_batch", "preemptions",
]


def test_fig18_cluster_serving(benchmark):
    data = benchmark.pedantic(
        fig18_cluster, kwargs=KWARGS, rounds=1, iterations=1
    )
    save_report(
        "fig18_cluster",
        render_table(
            data["rows"], COLUMNS,
            title="Fig 18 (cluster): continuous vs whole-request batching",
        ),
    )
    by_mode = {r["mode"]: r for r in data["rows"]}
    cont, whole = by_mode["continuous"], by_mode["whole"]

    # Nothing is dropped in either mode.
    assert cont["completed"] == KWARGS["n_requests"]
    assert whole["completed"] == KWARGS["n_requests"]

    # The headline claim: iteration-level admission wins on throughput
    # AND on tail time-to-first-token (sealed batches make late
    # arrivals wait out the whole previous batch).
    assert cont["tokens_per_s"] > whole["tokens_per_s"]
    assert cont["p99_ttft_ms"] < whole["p99_ttft_ms"]

    # Continuous mode keeps batches fuller than one request at a time.
    assert cont["mean_batch"] > 1.0
    assert cont["kv_utilization"] > 0

    # Fault-injection recovery: the kill fired, the supervisor walked
    # worker 0 through degraded -> dead -> recovering, orphans replayed
    # on survivors, and every replayed token's digest matched the
    # original stream.
    scenario = data["fault_scenario"]
    assert scenario["faults"] == [
        {"at_s": 0.12, "worker": 0, "kind": "kill"}
    ]
    assert scenario["completed"] == KWARGS["n_requests"]
    assert scenario["replays"] > 0
    assert scenario["replay_ok"] is True
    states = [t["to"] for t in scenario["transitions"] if t["worker"] == 0]
    assert states == ["degraded", "dead", "recovering", "healthy"]
