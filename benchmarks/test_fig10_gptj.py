"""Fig. 10 — GPT-J 6B/30B MHA (MMTV) and FC (MTV) layers."""

from repro.harness import fig10_gptj, render_table, summarize_speedups
from repro.workloads import GPTJ_6B, GPTJ_30B

from .conftest import save_report

COLUMNS = [
    "model", "op", "batch", "tokens", "layer", "m", "k",
    "prim_ms", "prim_search_ms", "atim_ms", "cpu_ms",
    "atim_speedup_vs_prim", "atim_speedup_vs_cpu",
]


def test_fig10_mmtv_layers(benchmark):
    rows = benchmark.pedantic(
        fig10_gptj,
        kwargs=dict(
            models=(GPTJ_6B, GPTJ_30B),
            batches=(1, 16),
            tokens=(64, 512),
            include_mtv=False,
            n_trials=24,
        ),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig10_gptj_mmtv", render_table(rows, COLUMNS, title="Fig 10(a)/(c): MMTV")
    )
    assert len(rows) == 8
    for row in rows:
        # Within a few percent of PrIM at worst (reduced trial budget);
        # the paper's full 1000-trial runs dominate everywhere.
        assert row["atim_speedup_vs_prim"] >= 0.9
    # Small spatial dimensions benefit most from reduction tiling: the
    # batch-1 / 64-token case beats the batch-16 / 512-token case.
    small = next(r for r in rows if r["batch"] == 1 and r["tokens"] == 64
                 and r["model"] == "gptj-6b")
    big = next(r for r in rows if r["batch"] == 16 and r["tokens"] == 512
               and r["model"] == "gptj-6b")
    assert small["atim_speedup_vs_prim"] >= big["atim_speedup_vs_prim"] * 0.9


def test_fig10_mtv_layers(benchmark):
    rows = benchmark.pedantic(
        fig10_gptj,
        kwargs=dict(
            models=(GPTJ_6B,),
            batches=(),
            tokens=(),
            include_mtv=True,
            n_trials=32,
        ),
        rounds=1,
        iterations=1,
    )
    save_report(
        "fig10_gptj_mtv", render_table(rows, COLUMNS, title="Fig 10(b): FC MTV")
    )
    assert len(rows) == 4  # qkv_proj, qkv_gen, fc, fc_proj
    summary = summarize_speedups(rows, "atim_speedup_vs_prim")
    assert summary["gmean"] > 1.5  # paper: up to 8.21x on FC layers
    # The transposed FC projection (wide reduction) gains the most from
    # reduction tiling (paper: 6.25x for 4096x16384 vs 3.03x transposed).
    by_layer = {r["layer"]: r for r in rows}
    assert (
        by_layer["fc_proj"]["atim_speedup_vs_prim"]
        >= by_layer["fc"]["atim_speedup_vs_prim"] * 0.8
    )
    for row in rows:
        assert row["atim_speedup_vs_cpu"] > 1.0  # MTV ≥64MB beats the CPU
