"""Table 3 — autotuned parameters found for each workload/size."""

from repro.harness import render_table, table3_parameters

from .conftest import save_report


def test_table3_parameters(benchmark):
    rows = benchmark.pedantic(
        table3_parameters,
        kwargs=dict(workloads=["red", "mtv", "va"], n_trials=32),
        rounds=1,
        iterations=1,
    )
    save_report("table3_parameters", render_table(rows, title="Table 3"))
    by_key = {(r["workload"], r["size"]): r for r in rows}

    # PrIM never tiles the reduction dimension; ATiM may.
    for (wl, _size), row in by_key.items():
        if wl == "mtv":
            assert row["prim_search"]["k_dpus"] == 1
    # Large MTV: ATiM distributes DPUs over both dimensions (the paper's
    # headline structural difference in Table 3).
    large = by_key[("mtv", "512MB")]
    assert large["atim"].get("k_dpus", 1) > 1
    # PrIM defaults come straight from Table 3.
    assert by_key[("mtv", "64MB")]["prim_defaults"]["m_dpus"] == 256
    assert by_key[("red", "64MB")]["prim_defaults"]["n_dpus"] == 1024
